(* SecComm: configurable secure communication service (Sec. 4.2, Fig. 12).

   The evaluated configuration has three micro-protocols — DES privacy, a
   trivial XOR privacy layer, and a coordinator — and exhibits exactly one
   event chain on the sender (SecPush -> SecNetOut) and one on the
   receiver (SecPop -> SecDeliver).  Layers transform the shared message
   buffer (the global [cur_push] / [cur_pop]), Cactus-style, so a
   configuration is assembled purely by choosing which handlers are bound.

   Most execution time is inside the DES primitives, which is why the
   paper's push/pop improvements (4-13%) are modest compared to the video
   player: the optimizations remove the event-machinery overhead around
   the crypto, not the crypto itself. *)

open Podopt_cactus
open Podopt_eventsys

module V = Podopt_hir.Value

type config = {
  des : bool;
  xor : bool;
  mac : bool;       (* KeyedMD5 integrity, an optional extra layer *)
  replay : bool;    (* sequence-number replay protection *)
  compress : bool;  (* RLE compression, written in HIR *)
}

let paper_config =
  { des = true; xor = true; mac = false; replay = false; compress = false }

(* --- Micro-protocols --------------------------------------------------- *)

let coordinator : Micro_protocol.t =
  Micro_protocol.make ~name:"SecCoordinator"
    ~source:
      {|
handler coord_push(msg) {
  global cur_push = msg;
  global push_count = global push_count + 1;
}

handler coord_pop(wire) {
  global cur_pop = wire;
  global pop_count = global pop_count + 1;
}

handler out_push(msg) {
  raise sync SecNetOut(global cur_push);
}

handler out_pop(wire) {
  raise sync SecDeliver(global cur_pop);
}

handler net_out(wire) {
  global pushed_bytes = global pushed_bytes + len(wire);
  emit("udp_tx", wire);
}

handler deliver_up(msg) {
  global popped_bytes = global popped_bytes + len(msg);
  emit("deliver", msg);
}
|}
    ~globals:
      [
        ("cur_push", V.Bytes Bytes.empty);
        ("cur_pop", V.Bytes Bytes.empty);
        ("push_count", V.Int 0);
        ("pop_count", V.Int 0);
        ("pushed_bytes", V.Int 0);
        ("popped_bytes", V.Int 0);
      ]
    [
      { Micro_protocol.event = "SecPush"; handler = "coord_push"; order = Some 10 };
      { event = "SecPush"; handler = "out_push"; order = Some 90 };
      { event = "SecPop"; handler = "coord_pop"; order = Some 10 };
      { event = "SecPop"; handler = "out_pop"; order = Some 90 };
      { event = "SecNetOut"; handler = "net_out"; order = Some 10 };
      { event = "SecDeliver"; handler = "deliver_up"; order = Some 10 };
    ]

let des_privacy : Micro_protocol.t =
  Micro_protocol.make ~name:"DESPrivacy"
    ~source:
      {|
handler des_push(msg) {
  global cur_push = des_encrypt(global des_key, global cur_push);
  global des_ops = global des_ops + 1;
}

handler des_pop(wire) {
  global cur_pop = des_decrypt(global des_key, global cur_pop);
  global des_ops = global des_ops + 1;
}
|}
    ~globals:
      [ ("des_key", V.Bytes (Bytes.of_string "8bytekey")); ("des_ops", V.Int 0) ]
    [
      { Micro_protocol.event = "SecPush"; handler = "des_push"; order = Some 30 };
      (* decryption layers run in reverse order on the pop path *)
      { event = "SecPop"; handler = "des_pop"; order = Some 40 };
    ]

let xor_privacy : Micro_protocol.t =
  Micro_protocol.make ~name:"XORPrivacy"
    ~source:
      {|
handler xor_push(msg) {
  global cur_push = xor_apply(global xor_key, global cur_push);
  global xor_ops = global xor_ops + 1;
}

handler xor_pop(wire) {
  global cur_pop = xor_apply(global xor_key, global cur_pop);
  global xor_ops = global xor_ops + 1;
}
|}
    ~globals:[ ("xor_key", V.Bytes (Bytes.of_string "\x5a\xc3\x3c")); ("xor_ops", V.Int 0) ]
    [
      { Micro_protocol.event = "SecPush"; handler = "xor_push"; order = Some 40 };
      { event = "SecPop"; handler = "xor_pop"; order = Some 30 };
    ]

let keyed_md5 : Micro_protocol.t =
  Micro_protocol.make ~name:"KeyedMD5Integrity"
    ~source:
      {|
// append a 16-byte HMAC-MD5 trailer
handler mac_push(msg) {
  let mac = hmac_md5(global mac_key, global cur_push);
  global cur_push = bytes_concat(global cur_push, mac);
}

// Verify and strip the trailer.  A failed check aborts the remaining pop
// handlers (Cactus halt-event): tampered ciphertext must not reach the
// decryption layers or the application.
handler mac_pop(wire) {
  let n = len(global cur_pop);
  if (n < 16) {
    global mac_failures = global mac_failures + 1;
    emit("mac_fail", n);
    halt_event();
  }
  let body = bytes_sub(global cur_pop, 0, n - 16);
  let mac = bytes_sub(global cur_pop, n - 16, 16);
  let expect = hmac_md5(global mac_key, body);
  if (mac == expect) {
    global cur_pop = body;
  } else {
    global mac_failures = global mac_failures + 1;
    emit("mac_fail", n);
    halt_event();
  }
}
|}
    ~globals:
      [ ("mac_key", V.Bytes (Bytes.of_string "integrity-key")); ("mac_failures", V.Int 0) ]
    [
      (* MAC is the outermost layer: last on push, first on pop *)
      { Micro_protocol.event = "SecPush"; handler = "mac_push"; order = Some 50 };
      { event = "SecPop"; handler = "mac_pop"; order = Some 20 };
    ]

let replay_protection : Micro_protocol.t =
  Micro_protocol.make ~name:"ReplayProtection"
    ~source:
      {|
// Prepend a 4-byte sequence number (innermost layer: it travels
// encrypted).
handler replay_push(msg) {
  let seq = global send_seq + 1;
  global send_seq = seq;
  let hdr = bytes_make(4, 0);
  bytes_set(hdr, 0, band(seq, 255));
  bytes_set(hdr, 1, band(shr(seq, 8), 255));
  bytes_set(hdr, 2, band(shr(seq, 16), 255));
  bytes_set(hdr, 3, band(shr(seq, 24), 255));
  global cur_push = bytes_concat(hdr, global cur_push);
}

// Strip and check the sequence number after decryption; a replayed or
// reordered-below-window message halts delivery.
handler replay_pop(wire) {
  let n = len(global cur_pop);
  if (n < 4) {
    global replay_drops = global replay_drops + 1;
    emit("replay_drop", n);
    halt_event();
  }
  let seq = bor(bor(byte(global cur_pop, 0), shl(byte(global cur_pop, 1), 8)),
                bor(shl(byte(global cur_pop, 2), 16), shl(byte(global cur_pop, 3), 24)));
  if (seq <= global recv_seq) {
    global replay_drops = global replay_drops + 1;
    emit("replay_drop", seq);
    halt_event();
  }
  global recv_seq = seq;
  global cur_pop = bytes_sub(global cur_pop, 4, n - 4);
}
|}
    ~globals:
      [ ("send_seq", V.Int 0); ("recv_seq", V.Int 0); ("replay_drops", V.Int 0) ]
    [
      (* innermost: first on push (before encryption layers), last on pop
         (after decryption layers), but before delivery *)
      { Micro_protocol.event = "SecPush"; handler = "replay_push"; order = Some 20 };
      { event = "SecPop"; handler = "replay_pop"; order = Some 80 };
    ]

(* Run-length compression written entirely in HIR.  Unlike the DES layer
   (a native primitive), these handlers do their byte work in interpreted
   loops — a configuration where the handler code itself, not a native
   call, dominates, so compiling the merged super-handler pays off far
   more than in the crypto-bound configurations. *)
let compression : Micro_protocol.t =
  Micro_protocol.make ~name:"RLECompression"
    ~source:
      {|
// encode (run, byte) pairs; runs are capped at 255
handler rle_push(msg) {
  let src = global cur_push;
  let n = len(src);
  let out = bytes_make(2 * n + 2, 0);
  let i = 0;
  let o = 0;
  while (i < n) {
    let b = byte(src, i);
    let run = 1;
    while (i + run < n && run < 255 && byte(src, i + run) == b) {
      run = run + 1;
    }
    bytes_set(out, o, run);
    bytes_set(out, o + 1, b);
    o = o + 2;
    i = i + run;
  }
  global cur_push = bytes_sub(out, 0, o);
  global rle_bytes_in = global rle_bytes_in + n;
  global rle_bytes_out = global rle_bytes_out + o;
}

// decode: first pass sizes the output, second pass fills it
handler rle_pop(wire) {
  let src = global cur_pop;
  let n = len(src);
  let i = 0;
  let total = 0;
  while (i + 1 < n) {
    total = total + byte(src, i);
    i = i + 2;
  }
  let out = bytes_make(max(0, total), 0);
  i = 0;
  let o = 0;
  while (i + 1 < n) {
    let run = byte(src, i);
    let b = byte(src, i + 1);
    let k = 0;
    while (k < run) {
      bytes_set(out, o + k, b);
      k = k + 1;
    }
    o = o + run;
    i = i + 2;
  }
  global cur_pop = out;
}
|}
    ~globals:[ ("rle_bytes_in", V.Int 0); ("rle_bytes_out", V.Int 0) ]
    [
      (* compresses after the replay header is attached, before
         encryption; decompresses after decryption, before the replay
         check *)
      { Micro_protocol.event = "SecPush"; handler = "rle_push"; order = Some 25 };
      { event = "SecPop"; handler = "rle_pop"; order = Some 70 };
    ]

(* --- Assembly ----------------------------------------------------------- *)

let composite (cfg : config) : Composite.t =
  let layers =
    [ Some coordinator ]
    @ [ (if cfg.replay then Some replay_protection else None) ]
    @ [ (if cfg.compress then Some compression else None) ]
    @ [ (if cfg.des then Some des_privacy else None) ]
    @ [ (if cfg.xor then Some xor_privacy else None) ]
    @ [ (if cfg.mac then Some keyed_md5 else None) ]
  in
  Composite.make ~name:"SecComm" (List.filter_map Fun.id layers)

let create ?costs ?(config = paper_config) () : Runtime.t =
  Podopt_crypto.Prims.install ();
  Session.runtime (Session.create ?costs (composite config))

(* --- Operations --------------------------------------------------------- *)

(* Push a message down the stack; the encrypted wire bytes appear as a
   "udp_tx" emit. *)
let push rt (msg : bytes) = Runtime.raise_sync rt "SecPush" [ V.Bytes msg ]

(* Feed wire bytes up the stack; the decrypted message appears as a
   "deliver" emit. *)
let pop rt (wire : bytes) = Runtime.raise_sync rt "SecPop" [ V.Bytes wire ]

let push_time rt = Runtime.event_processing_time rt "SecPush"
let pop_time rt = Runtime.event_processing_time rt "SecPop"

let stat rt name = match Runtime.get_global rt name with V.Int n -> n | _ -> 0
