(* Dynamic reconfiguration under optimization (Sec. 3.3 and Fig. 14):

     dune exec examples/rebind_demo.exe

   A Cactus composite is optimized into super-handlers, then one
   micro-protocol is swapped at runtime.  The binding-version guards
   detect the change and fall back; re-optimizing restores the fast path.
   The second half compares monolithic and partitioned chain guards under
   periodic rebinding. *)

open Podopt
open Podopt_cactus

let logger which =
  Micro_protocol.make ~name:("Logger" ^ which)
    ~source:
      (Printf.sprintf
         "handler log_%s(x) { global entries = global entries + 1; emit(\"log%s\", x); }"
         which which)
    [ { Micro_protocol.event = "Request"; handler = "log_" ^ which; order = Some 20 } ]

let auth : Micro_protocol.t =
  Micro_protocol.make ~name:"Auth"
    ~source:
      {|
handler check_auth(x) {
  if (x % 17 == 0) {
    global denied = global denied + 1;
    emit("denied", x);
    halt_event();
  }
  global allowed = global allowed + 1;
}
|}
    ~globals:[ ("denied", Value.Int 0); ("allowed", Value.Int 0) ]
    [ { Micro_protocol.event = "Request"; handler = "check_auth"; order = Some 10 } ]

let worker : Micro_protocol.t =
  Micro_protocol.make ~name:"Worker"
    ~source:
      {|
handler do_work(x) {
  let cost = x * x % 97;
  global work = global work + cost;
  raise sync Done(cost);
}
handler done_h(c) {
  global completed = global completed + 1;
}
|}
    ~globals:[ ("work", Value.Int 0); ("completed", Value.Int 0) ]
    [
      { Micro_protocol.event = "Request"; handler = "do_work"; order = Some 30 };
      { Micro_protocol.event = "Done"; handler = "done_h"; order = Some 10 };
    ]

let () =
  let session =
    Session.create
      (Composite.make ~name:"service"
         [ auth; logger "a"; worker ])
  in
  let rt = Session.runtime session in
  Runtime.set_global rt "entries" (Value.Int 0);
  rt.Runtime.emit_log_enabled <- false;
  let workload () =
    for i = 1 to 300 do
      Runtime.raise_sync rt "Request" [ Value.Int i ]
    done
  in
  let applied = Driver.profile_and_optimize ~threshold:50 rt ~workload in
  Fmt.pr "optimized: %s@." (String.concat ", " applied.Driver.installed);

  Runtime.reset_measurements rt;
  workload ();
  Fmt.pr "steady state: %d optimized dispatches, %d fallbacks@."
    rt.Runtime.stats.Runtime.optimized_dispatches rt.Runtime.stats.Runtime.fallbacks;

  (* swap the logger implementation at runtime *)
  Session.swap_micro_protocol session ~remove:"Loggera" (logger "b");
  Runtime.reset_measurements rt;
  workload ();
  Fmt.pr "after swap:   %d optimized dispatches, %d fallbacks (guards caught it)@."
    rt.Runtime.stats.Runtime.optimized_dispatches rt.Runtime.stats.Runtime.fallbacks;

  (* re-optimize against the new configuration *)
  let applied = Driver.profile_and_optimize ~threshold:50 rt ~workload in
  ignore applied;
  Runtime.reset_measurements rt;
  workload ();
  Fmt.pr "re-optimized: %d optimized dispatches, %d fallbacks@."
    rt.Runtime.stats.Runtime.optimized_dispatches rt.Runtime.stats.Runtime.fallbacks;
  Fmt.pr "denied=%s allowed=%s completed=%s@."
    (Value.to_string (Runtime.get_global rt "denied"))
    (Value.to_string (Runtime.get_global rt "allowed"))
    (Value.to_string (Runtime.get_global rt "completed"))
