(** Shard crash-recovery state: checkpoints and redo journals.

    A {!snapshot} captures the full live state of one broker shard at
    an epoch boundary; the {!journal} is the coordinator-side redo log
    of everything the shard was fed since its last checkpoint.
    Restoring the snapshot and replaying the journal re-derives the
    shard's pre-crash state deterministically — the supervisor's whole
    recovery story (see doc/RECOVERY.md).

    Serialized snapshots use the repo's line-oriented framing
    (Trace_io / Store / Log conventions) and are content-addressed by
    the CRC-32 of their canonical body, like profile-store entries: the
    id is re-derived on load, so tampered or truncated checkpoints are
    refused ({!Format_error}) instead of resurrecting a corrupt
    shard. *)

module Packet = Podopt_net.Packet
module Store = Podopt_store.Store
module Value = Podopt_hir.Value

exception Format_error of string

(** Checkpoint format version ([V] line); a mismatch is refused. *)
val version : int

type snapshot = {
  shard : int;
  epoch : int;                  (** epoch the checkpoint was taken at *)
  kind : string;                (** workload kind, e.g. ["seccomm"] *)
  clock : int;                  (** shard virtual clock *)
  sessions : int;               (** sessions routed to the shard so far *)
  counters : (string * int) list;        (** named counters, sorted *)
  globals : (string * Value.t) list;     (** runtime globals, sorted *)
  queue : (int * Packet.t) list;         (** (due, op) in pop order *)
  retries : ((string * int) * int) list; (** (src, seq) -> attempts, sorted *)
  dead : Packet.t list;                  (** dead letters, oldest first *)
  streams : (string * int64) list;       (** fault-stream positions, sorted *)
  profile : Store.entry option;          (** cumulative adaptive profile *)
}

(** Build a snapshot, sorting the order-insensitive fields into
    canonical order so equal states render equal bytes. *)
val make :
  shard:int -> epoch:int -> kind:string -> clock:int -> sessions:int ->
  counters:(string * int) list -> globals:(string * Value.t) list ->
  queue:(int * Packet.t) list -> retries:((string * int) * int) list ->
  dead:Packet.t list -> streams:(string * int64) list ->
  profile:Store.entry option -> unit -> snapshot

(** CRC-32 (hex) of the snapshot's canonical body — its content id. *)
val id : snapshot -> string

val to_string : snapshot -> string

(** Parse and verify a serialized snapshot.  Raises {!Format_error} on
    malformed input, an unsupported version, or an id that does not
    match the content. *)
val of_string : string -> snapshot

(** {1 The redo journal} *)

type op =
  | Offer of int * Packet.t
      (** an op admitted to the shard's ingress at front time [now] *)
  | Drain of int * int
      (** an epoch drain at time [now] with the drain's batch width *)

type journal

(** An empty journal with high-water mark [limit] (> 0).  The mark is a
    checkpoint trigger, not a hard cap: entries are never dropped (that
    would lose work) — once {!full}, the supervisor checkpoints at the
    next epoch boundary, which {!clear}s the journal. *)
val journal : limit:int -> journal

val record : journal -> op -> unit

(** Entries in admission order. *)
val entries : journal -> op list

val journal_length : journal -> int

(** At or past the high-water mark? *)
val full : journal -> bool

val clear : journal -> unit
