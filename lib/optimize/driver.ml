(* End-to-end profile-directed optimization (Sec. 3).

   [analyze] turns a trace into a plan: build the event graph (Fig. 4),
   reduce it by the weight threshold (Fig. 6), extract synchronous event
   chains, and decide which events get super-handlers.  [apply] builds the
   merged, subsumed, compiler-optimized, compiled super-handlers and
   installs them with binding-version guards.

   A key difference from naive profile-guided specialization: correctness
   never depends on profile accuracy.  Subsumption rewrites the *actual*
   synchronous raise sites in handler code (conditional raises stay under
   their conditions), and stale bindings are caught by the runtime guards.
   The profile only decides *where* to spend the effort. *)

open Podopt_hir
open Podopt_eventsys
open Podopt_profile

let log = Logs.Src.create "podopt.driver" ~doc:"profile-directed optimizer"

module Log = (val Logs.src_log log)

let default_threshold = 100

(* --- Analysis --------------------------------------------------------- *)

(* The analysis proper, over any event graph — the live trace's (via
   [analyze]) or a merged cross-run profile (the warm-start path).  The
   runtime is consulted only for current handler bindings. *)
let plan_of_graph ?(threshold = default_threshold) ?(strategy = Plan.Monolithic)
    ?(speculate = false) ?(batch = false) (rt : Runtime.t) (g : Event_graph.t) :
    Plan.t =
  let reduced = Reduce.reduce g ~threshold in
  let chains = Chains.find reduced in
  let chain_events = List.concat chains in
  let chain_actions =
    List.map (fun events -> Plan.Merge_chain { events; strategy }) chains
  in
  (* hot events outside chains still profit from handler merging when they
     have more than one handler *)
  let merge_actions =
    List.filter_map
      (fun (n : Event_graph.node) ->
        let name = n.Event_graph.name in
        if List.mem name chain_events then None
        else if List.length (Runtime.handlers rt name) > 1 then
          Some (Plan.Merge_event name)
        else None)
      (List.sort compare (Event_graph.nodes reduced))
  in
  let speculate_pairs =
    if speculate then Speculate.choose reduced ~exclude:chain_events else []
  in
  {
    Plan.actions = chain_actions @ merge_actions;
    threshold;
    passes = Plan.default_passes;
    subsume = true;
    speculate = speculate_pairs;
    batch;
  }

let analyze ?threshold ?strategy ?speculate ?batch (rt : Runtime.t) : Plan.t =
  plan_of_graph ?threshold ?strategy ?speculate ?batch rt
    (Event_graph.of_trace rt.Runtime.trace)

(* --- Application ------------------------------------------------------ *)

type applied = {
  plan : Plan.t;
  installed : string list;      (* events with super-handlers installed *)
  skipped : (string * string) list;  (* event, reason *)
  generated_procs : Ast.proc list;
  original_size : int;
  added_size : int;
}

(* Merge and optimize the super-handler body of one event.  If [subsume]
   lists (event, body) pairs, nested sync raises of those events are
   inlined first. *)
let build_super (rt : Runtime.t) (prog : Ast.program) ~passes
    ~(subsume : (string * Ast.block) list) ~(event : string) :
    Ast.proc * int =
  let merged, arity = Superhandler.merge rt prog ~event in
  let body =
    if subsume = [] then merged.Ast.body
    else Chain_merge.subsume ~covered:subsume merged.Ast.body
  in
  let body = Pipeline.optimize_block ~passes prog body in
  ({ merged with Ast.body }, arity)

(* Names of procedures this driver generates; they are regenerated on
   every [apply] and must not shadow their replacements. *)
let is_generated_name name =
  String.length name >= 8 && String.sub name 0 8 = "__super_"

(* [compile:false] installs interpreted closures over the transformed
   HIR instead of compiled ones: observably identical (same merged,
   subsumed, optimized bodies; same guards), different virtual cost.
   The replay differential oracle runs both variants against each other
   to check exactly that. *)
let apply ?(compile = true) (rt : Runtime.t) (plan : Plan.t) : applied =
  let compile_proc prog' name : Compile.compiled_proc =
    if compile then Compile.proc prog' name
    else fun host args -> Interp.run ~host prog' name args
  in
  (* drop super-handlers from earlier applications: they are about to be
     regenerated against the current bindings, and a stale same-named
     procedure would win the name lookup during compilation *)
  let prog =
    List.filter
      (fun (p : Ast.proc) -> not (is_generated_name p.Ast.name))
      (Runtime.program rt)
  in
  let original_size = Analysis.program_size prog in
  let installed = ref [] in
  let skipped = ref [] in
  let generated = ref [] in
  (* raw (un-subsumed, un-optimized) merged bodies of every covered event,
     used as subsumption material *)
  let raw_bodies : (string * Ast.block) list =
    List.filter_map
      (fun event ->
        try
          let merged, _ = Superhandler.merge rt prog ~event in
          Some (event, merged.Ast.body)
        with Superhandler.Not_mergeable reason ->
          skipped := (event, reason) :: !skipped;
          None)
      (Plan.covered_events plan)
  in
  let add_proc (p : Ast.proc) = generated := p :: !generated in
  let already_generated name =
    List.exists (fun (p : Ast.proc) -> p.Ast.name = name) !generated
  in
  let install_monolithic ~event ~covered ~subsume =
    match List.assoc_opt event raw_bodies with
    | None -> () (* already recorded as skipped *)
    | Some _ ->
      (* overlapping chains (e.g. two chains sharing a suffix) request the
         same super-handler more than once; generate it once *)
      if not (already_generated (Superhandler.super_name event)) then begin
        let proc, arity = build_super rt prog ~passes:plan.Plan.passes ~subsume ~event in
        add_proc proc;
        let prog' = prog @ [ proc ] in
        let compiled = compile_proc prog' proc.Ast.name in
        (* batch plans install the same compiled body as a Batch entry,
           additionally eligible for drain-loop amortization windows *)
        (if plan.Plan.batch then Runtime.install_batch else Runtime.install_super)
          rt ~event ~covered ~arity compiled;
        installed := event :: !installed
      end
  in
  List.iter
    (fun action ->
      match action with
      | Plan.Merge_event event ->
        install_monolithic ~event ~covered:[ event ] ~subsume:[]
      | Plan.Merge_chain { events; strategy = Plan.Monolithic } ->
        (* every suffix of the chain gets its own super-handler: the head
           subsumes the whole chain; later events may also be raised from
           outside the chain *)
        let rec suffixes = function
          | [] -> []
          | _ :: tl as all -> all :: suffixes tl
        in
        List.iter
          (fun suffix ->
            match suffix with
            | [] -> ()
            | event :: tail ->
              let subsume =
                if plan.Plan.subsume then
                  List.filter (fun (e, _) -> List.mem e tail) raw_bodies
                else []
              in
              install_monolithic ~event ~covered:suffix ~subsume)
          (suffixes events)
      | Plan.Merge_chain { events; strategy = Plan.Partitioned } ->
        (* One compiled segment per event; the runtime driver checks each
           event's binding version separately (Fig. 14).  Partitioning
           requires every non-final event's merged body to raise its
           successor synchronously exactly once, in tail position —
           otherwise the runtime's capture would reorder execution — so
           chains that do not qualify downgrade to monolithic (still
           optimized, just with whole-chain guards). *)
        let supers =
          List.map
            (fun event ->
              match List.assoc_opt event raw_bodies with
              | None -> None
              | Some _ ->
                Some (event, build_super rt prog ~passes:plan.Plan.passes ~subsume:[] ~event))
            events
        in
        let rec tail_links_ok = function
          | Some (_, (proc, _)) :: (Some (next_event, _) :: _ as rest) ->
            (match Chain_merge.tail_raise proc.Ast.body with
             | Some (target, _)
               when target = next_event
                    && Chain_merge.residual_sites ~covered:[ next_event ]
                         proc.Ast.body
                       = 1 ->
               tail_links_ok rest
             | Some _ | None -> false)
          | [ Some _ ] | [] -> true
          | None :: _ | Some _ :: None :: _ -> false
        in
        if not (tail_links_ok supers) then begin
          skipped :=
            ( String.concat "->" events,
              "partitioned chaining needs unique tail raises; using monolithic" )
            :: !skipped;
          (* downgrade: same treatment as a monolithic chain *)
          let rec suffixes = function [] -> [] | _ :: tl as all -> all :: suffixes tl in
          List.iter
            (fun suffix ->
              match suffix with
              | [] -> ()
              | event :: tail ->
                let subsume =
                  if plan.Plan.subsume then
                    List.filter (fun (e, _) -> List.mem e tail) raw_bodies
                  else []
                in
                install_monolithic ~event ~covered:suffix ~subsume)
            (suffixes events)
        end
        else begin
          let segments =
            List.mapi
              (fun i entry ->
                match entry with
                | Some (event, (proc, arity)) ->
                  add_proc proc;
                  let prog' = prog @ [ proc ] in
                  let compiled = compile_proc prog' proc.Ast.name in
                  let next = List.nth_opt events (i + 1) in
                  Some (Runtime.make_segment rt ~event ?next ~arity compiled)
                | None -> None)
              supers
          in
          match events, segments with
          | head :: _, segs when List.for_all Option.is_some segs ->
            Runtime.install_partitioned rt ~event:head
              (List.filter_map Fun.id segs);
            installed := head :: !installed
          | _ ->
            skipped :=
              (String.concat "->" events, "partitioned chain not mergeable")
              :: !skipped
        end)
    plan.Plan.actions;
  Speculate.apply rt plan.Plan.speculate;
  let generated_procs = List.rev !generated in
  (* keep generated procedures in the runtime program so the fallback path
     and later re-optimization see a consistent program *)
  let keep_old =
    List.filter
      (fun (p : Ast.proc) ->
        not (List.exists (fun (q : Ast.proc) -> q.Ast.name = p.Ast.name) generated_procs))
      prog
  in
  Runtime.set_program rt (keep_old @ generated_procs);
  {
    plan;
    installed = List.rev !installed;
    skipped = List.rev !skipped;
    generated_procs;
    original_size;
    added_size = List.fold_left (fun acc p -> acc + Analysis.proc_size p) 0 generated_procs;
  }

(* --- Convenience: two-phase profiling --------------------------------- *)

(* Run the paper's methodology end to end: (1) run [workload] with event
   instrumentation to find hot events and chains; (2) re-run with handler
   instrumentation on the hot events (the analysis itself only needs the
   event level, but the handler profile is what a user inspects); (3)
   analyze and apply. *)
let profile_and_optimize ?threshold ?strategy ?speculate ~(workload : unit -> unit)
    (rt : Runtime.t) : applied =
  Trace.clear rt.Runtime.trace;
  Trace.enable_events rt.Runtime.trace;
  workload ();
  let plan = analyze ?threshold ?strategy ?speculate rt in
  let hot = Plan.covered_events plan in
  Trace.enable_handlers rt.Runtime.trace hot;
  workload ();
  Trace.disable_events rt.Runtime.trace;
  Trace.disable_handlers rt.Runtime.trace;
  apply rt plan

let size_report (a : applied) =
  Size.report ~original:a.original_size ~added:a.added_size
