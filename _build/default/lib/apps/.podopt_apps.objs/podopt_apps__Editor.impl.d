lib/apps/editor.ml: Char Client Menu Podopt_eventsys Podopt_hir Podopt_xwin Scrollbar String Textview Widget Xevent
