(** A client session: a stream of ops sent towards the broker over a
    simulated {!Podopt_net.Link}, with retry-with-backoff when the
    broker sheds one of its events.

    Ops are sent on a virtual-time schedule: the closed-loop grid
    ([start], then every [interval] units), or — when [schedule] is
    given — an explicit per-op due-time array (the open-loop arrival
    processes of {!Arrivals}).  A shed notification ({!nack})
    schedules a resend after the {!Policy.backoff} delay for that op's
    attempt count; after [max_retries] rejections the op is abandoned,
    exactly once — an abandoned seq is latched, so late nacks for it
    can neither re-enter the backoff machinery nor inflate
    [gave_up]. *)

open Podopt_eventsys
open Podopt_net

type stats = {
  mutable sent : int;     (** first sends (not counting retries) *)
  mutable retries : int;  (** resends after a shed notification *)
  mutable nacks : int;    (** shed notifications received *)
  mutable gave_up : int;  (** ops abandoned after max_retries *)
}

type t

(** [schedule], when given, must have exactly one due time per op;
    it overrides the [start]/[interval] grid. *)
val create :
  id:string -> link:Link.t -> ops:bytes array -> ?start:int -> ?interval:int ->
  ?schedule:int array -> backoff:Policy.backoff -> unit -> t

val id : t -> string

(** The session's outbound link (the recorder hangs its send logger
    here, the replayer its arrival script). *)
val link : t -> Link.t

(** The op payloads, indexed by seq. *)
val ops : t -> bytes array

val start : t -> int
val interval : t -> int

(** All ops sent and no retry pending. *)
val finished : t -> bool

(** Earliest pending work (next first-send or earliest queued retry);
    [None] iff {!finished}.  The load generator's session wheel keys
    on this. *)
val next_due : t -> int option

(** Install (or clear) the wheel re-index hook: called with the due
    time whenever {!nack} schedules a retry, so a session the wheel
    already passed over gets re-queued at its new due. *)
val set_waker : t -> (int -> unit) option -> unit

(** The last scheduled first-send time (the session's send horizon;
    retries may extend past it by the backoff tail). *)
val horizon : t -> int

(** Send every op and due retry whose schedule time is [<= now] over
    the link towards [rt] (the broker's front runtime). *)
val pump : t -> now:int -> rt:Runtime.t -> deliver_event:string -> unit

(** The broker shed this session's op [seq] at time [now]. *)
val nack : t -> seq:int -> now:int -> unit

val stats : t -> stats
