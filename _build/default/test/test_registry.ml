open Podopt

let mk () =
  let tbl = Event.create_table () in
  let reg = Registry.create () in
  (tbl, reg)

let h name = Handler.hir' name

let test_bind_order_default () =
  let tbl, reg = mk () in
  let ev = Event.intern tbl "E" in
  Registry.bind reg ev (h "a");
  Registry.bind reg ev (h "b");
  Registry.bind reg ev (h "c");
  Alcotest.(check (list string)) "append order" [ "a"; "b"; "c" ]
    (List.map (fun x -> x.Handler.name) (Registry.handlers reg ev))

let test_bind_explicit_order () =
  let tbl, reg = mk () in
  let ev = Event.intern tbl "E" in
  Registry.bind reg ev ~order:10 (h "late");
  Registry.bind reg ev ~order:1 (h "early");
  Registry.bind reg ev ~order:5 (h "mid");
  Alcotest.(check (list string)) "sorted by order" [ "early"; "mid"; "late" ]
    (List.map (fun x -> x.Handler.name) (Registry.handlers reg ev))

let test_equal_order_stable () =
  let tbl, reg = mk () in
  let ev = Event.intern tbl "E" in
  Registry.bind reg ev ~order:3 (h "first");
  Registry.bind reg ev ~order:3 (h "second");
  Alcotest.(check (list string)) "bind order among equals" [ "first"; "second" ]
    (List.map (fun x -> x.Handler.name) (Registry.handlers reg ev))

let test_version_bumps () =
  let tbl, reg = mk () in
  let ev = Event.intern tbl "E" in
  let v0 = Registry.version reg ev in
  Registry.bind reg ev (h "a");
  let v1 = Registry.version reg ev in
  Alcotest.(check bool) "bind bumps" true (v1 > v0);
  let removed = Registry.unbind reg ev ~name:"a" in
  Alcotest.(check bool) "unbind removed" true removed;
  Alcotest.(check bool) "unbind bumps" true (Registry.version reg ev > v1)

let test_unbind_missing_no_bump () =
  let tbl, reg = mk () in
  let ev = Event.intern tbl "E" in
  Registry.bind reg ev (h "a");
  let v = Registry.version reg ev in
  let removed = Registry.unbind reg ev ~name:"zzz" in
  Alcotest.(check bool) "nothing removed" false removed;
  Alcotest.(check int) "version unchanged" v (Registry.version reg ev)

let test_handler_bound_to_multiple_events () =
  let tbl, reg = mk () in
  let e1 = Event.intern tbl "E1" in
  let e2 = Event.intern tbl "E2" in
  let shared = h "shared" in
  Registry.bind reg e1 shared;
  Registry.bind reg e2 shared;
  Alcotest.(check int) "bound to both" 2
    (List.length (Registry.handlers reg e1) + List.length (Registry.handlers reg e2))

let test_intern_stable () =
  let tbl, _ = mk () in
  let a = Event.intern tbl "X" in
  let b = Event.intern tbl "X" in
  Alcotest.(check bool) "same id" true (Event.equal a b);
  let c = Event.intern tbl "Y" in
  Alcotest.(check bool) "different id" false (Event.equal a c)

let suite =
  [
    Alcotest.test_case "default bind order" `Quick test_bind_order_default;
    Alcotest.test_case "explicit order" `Quick test_bind_explicit_order;
    Alcotest.test_case "equal order stable" `Quick test_equal_order_stable;
    Alcotest.test_case "version bumps" `Quick test_version_bumps;
    Alcotest.test_case "unbind missing" `Quick test_unbind_missing_no_bump;
    Alcotest.test_case "handler on multiple events" `Quick test_handler_bound_to_multiple_events;
    Alcotest.test_case "event interning" `Quick test_intern_stable;
  ]
