(** An X client: widget tree + event queue + the three handler
    mechanisms mapped onto the event runtime.

    Mapping: a translation firing with action sequence [a1; a2] raises
    the runtime event ["ACT__a1__a2"] whose handlers are the action
    procedures in sequence (the Fig. 7 merging shape); a widget event
    handler for kind K on widget W binds to ["XEV__W__K"]; callback list
    C of widget W binds to ["CB__W__C"] and widget code invokes it by a
    synchronous raise — the paper's "open up callbacks one step further"
    subsumption target. *)

open Podopt_eventsys
module V := Podopt_hir.Value

type t = {
  runtime : Runtime.t;
  root : Widget.t;
  queue : Xevent.t Queue.t;
  actions : (string, string) Hashtbl.t;
  mutable action_events : string list;
  mutable focus : Widget.t option;
  mutable timeout_count : int;
  mutable dispatched : int;
}

val action_event_name : string list -> string
val xev_event_name : Widget.t -> Xevent.kind -> string
val callback_event_name : widget:string -> callback:string -> string

(** Creates the runtime and installs the X framework primitives. *)
val create : ?costs:Costs.model -> root:Widget.t -> unit -> t

(** Extend the client's HIR program (widget behaviours). *)
val add_program : t -> string -> unit

exception Unknown_action of string

(** Map an action name to its HIR procedure. *)
val register_action : t -> name:string -> proc:string -> unit

(** Bind runtime events for every translation, event handler and
    callback in the widget tree (Xt's "realize").  Raises
    {!Unknown_action} for translations naming unregistered actions. *)
val realize : t -> unit

val set_focus : t -> Widget.t -> unit

(** Queue an event from the (simulated) server; X clients queue events
    and dispatch them one at a time. *)
val post : t -> Xevent.t -> unit

(** Routing: explicit window id, else focus for key events, else pointer
    position. *)
val route : t -> Xevent.t -> Widget.t option

(** Dispatch one queued event: primitive handlers first (if mask-
    selected), then the first matching translation.  False when empty. *)
val process_one : t -> bool

val process_all : t -> unit

(** Invoke a widget's callback list synchronously. *)
val call_callbacks : t -> Widget.t -> name:string -> V.t list -> unit

(** Xt-style timeout: run the procedure after a virtual-time delay. *)
val add_timeout : t -> delay:int -> proc:string -> unit

(** Drain timed/async work. *)
val run_pending : ?until:int -> t -> unit

(** Mean response time (virtual units) of a translation's action event —
    the Fig. 13 metric. *)
val action_response_time : t -> string list -> float
