lib/ctp/fec.ml: Events Micro_protocol Podopt_cactus Podopt_hir
