lib/optimize/defer.mli: Podopt_eventsys Podopt_hir Podopt_profile Runtime
