lib/hir/opt_copyprop.ml: Analysis Ast List Map Rewrite String
