(** Compilation of HIR to OCaml closures — the "code generation" half of
    the paper's pipeline.

    Variables are resolved to integer slots at compile time, control flow
    becomes direct OCaml control flow, and literals are preallocated.
    The generated closure still reports one [tick] per executed node so
    the deterministic cost model can price compiled execution differently
    from interpreted execution; the wall-clock speedup comes from the
    removed hashtable lookups, list traversals and match dispatch. *)

(** A compiled procedure: supply a host and the argument vector. *)
type compiled_proc = Interp.host -> Value.t list -> Value.t

(** [proc prog name] compiles procedure [name] of [prog] (callees are
    compiled lazily on first call; recursion is supported).  Raises
    {!Value.Type_error} if [name] is not in [prog]. *)
val proc : Ast.program -> string -> compiled_proc
