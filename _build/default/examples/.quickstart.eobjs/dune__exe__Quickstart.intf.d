examples/quickstart.mli:
