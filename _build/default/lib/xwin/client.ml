(* An X client: widget tree + event queue + the three handler mechanisms
   mapped onto the event runtime.

   Mapping (documented in DESIGN.md):
   - a translation firing with action sequence [a1; a2] raises the runtime
     event "ACT__a1__a2" whose bound handlers are the action procedures in
     sequence — so "two action handlers triggered in sequence" (the
     paper's Popup and Scroll scenarios) is one event with two handlers,
     the handler-merging shape of Fig. 7;
   - a widget event handler for kind K on widget W is bound to
     "XEV__W__K";
   - callback list C of widget W is bound to "CB__W__C"; widget code
     invokes callbacks by raising that event synchronously, which is the
     paper's "optimize one step further by opening up callbacks". *)

open Podopt_eventsys
module V = Podopt_hir.Value

type t = {
  runtime : Runtime.t;
  root : Widget.t;
  queue : Xevent.t Queue.t;
  actions : (string, string) Hashtbl.t;  (* action name -> HIR proc *)
  mutable action_events : string list;   (* created "ACT__..." event names *)
  mutable focus : Widget.t option;
  mutable timeout_count : int;
  mutable dispatched : int;
}

let action_event_name (actions : string list) = "ACT__" ^ String.concat "__" actions
let xev_event_name (w : Widget.t) kind =
  Printf.sprintf "XEV__%s__%s" w.Widget.name (Xevent.kind_to_string kind)
let callback_event_name ~widget ~callback = Printf.sprintf "CB__%s__%s" widget callback

let create ?costs ~(root : Widget.t) () : t =
  Xprims.install ();
  {
    runtime = Runtime.create ?costs ();
    root;
    queue = Queue.create ();
    actions = Hashtbl.create 16;
    action_events = [];
    focus = None;
    timeout_count = 0;
    dispatched = 0;
  }

let add_program (t : t) (src : string) : unit =
  Runtime.set_program t.runtime (Runtime.program t.runtime @ Podopt_hir.Parse.program src)

exception Unknown_action of string

let register_action (t : t) ~(name : string) ~(proc : string) : unit =
  Hashtbl.replace t.actions name proc

(* Bind the runtime events for every translation, event handler and
   callback in the widget tree.  Call after building the tree ("realize"
   in Xt terms). *)
let realize (t : t) : unit =
  Widget.iter
    (fun w ->
      List.iter
        (fun (entry : Translation.entry) ->
          let ev = action_event_name entry.Translation.actions in
          if not (List.mem ev t.action_events) then begin
            t.action_events <- ev :: t.action_events;
            List.iteri
              (fun i action ->
                match Hashtbl.find_opt t.actions action with
                | Some proc ->
                  Runtime.bind t.runtime ~event:ev ~order:((i + 1) * 10)
                    (Handler.hir action ~proc)
                | None -> raise (Unknown_action action))
              entry.Translation.actions
          end)
        w.Widget.translations;
      List.iter
        (fun (kind, proc) ->
          Runtime.bind t.runtime ~event:(xev_event_name w kind) (Handler.hir proc ~proc))
        w.Widget.event_handlers;
      List.iter
        (fun (cb_name, procs) ->
          List.iter
            (fun proc ->
              Runtime.bind t.runtime
                ~event:(callback_event_name ~widget:w.Widget.name ~callback:cb_name)
                (Handler.hir proc ~proc))
            procs)
        w.Widget.callbacks)
    t.root

let set_focus (t : t) (w : Widget.t) = t.focus <- Some w

(* Queue an event from the (simulated) server. *)
let post (t : t) (ev : Xevent.t) : unit = Queue.add ev t.queue

let route (t : t) (ev : Xevent.t) : Widget.t option =
  if ev.Xevent.window <> 0 then Widget.find_by_id t.root ev.Xevent.window
  else
    match ev.Xevent.kind with
    | Xevent.KeyPress | Xevent.KeyRelease -> t.focus
    | _ -> Widget.pick t.root ~x:ev.Xevent.x ~y:ev.Xevent.y

let event_args (ev : Xevent.t) =
  [ V.Int ev.Xevent.x; V.Int ev.Xevent.y; V.Int ev.Xevent.detail ]

(* Dispatch one queued event: primitive event handlers first (if the
   widget selected the kind), then the first matching translation. *)
let process_one (t : t) : bool =
  match Queue.take_opt t.queue with
  | None -> false
  | Some ev ->
    (match route t ev with
     | None -> ()
     | Some w ->
       t.dispatched <- t.dispatched + 1;
       if
         Xevent.selects w.Widget.event_mask ev.Xevent.kind
         && List.mem_assoc ev.Xevent.kind w.Widget.event_handlers
       then Runtime.raise_sync t.runtime (xev_event_name w ev.Xevent.kind) (event_args ev);
       (match Translation.lookup w.Widget.translations ev with
        | Some actions ->
          Runtime.raise_sync t.runtime (action_event_name actions) (event_args ev)
        | None -> ()));
    true

let rec process_all (t : t) : unit = if process_one t then process_all t

(* Invoke a widget's callback list synchronously (used by widget code via
   the runtime, and by native client code). *)
let call_callbacks (t : t) (w : Widget.t) ~(name : string) (args : V.t list) : unit =
  Runtime.raise_sync t.runtime
    (callback_event_name ~widget:w.Widget.name ~callback:name)
    args

(* Xt-style timeout: run [proc] after [delay] virtual time units. *)
let add_timeout (t : t) ~(delay : int) ~(proc : string) : unit =
  t.timeout_count <- t.timeout_count + 1;
  let ev = Printf.sprintf "TIMEOUT__%d" t.timeout_count in
  Runtime.bind t.runtime ~event:ev (Handler.hir proc ~proc);
  Runtime.raise_timed t.runtime ev ~delay []

(* Drain timed/async work (timeouts, deferred redraws). *)
let run_pending ?until (t : t) = Runtime.run ?until t.runtime

(* Mean response time (virtual units) for a translation's action event:
   the Fig. 13 metric. *)
let action_response_time (t : t) (actions : string list) : float =
  let ev = action_event_name actions in
  let total = Runtime.event_processing_time t.runtime ev in
  let count = Runtime.event_dispatch_count t.runtime ev in
  if count = 0 then 0.0 else float_of_int total /. float_of_int count
