(** Secure messenger over SecComm (Sec. 4.2, Fig. 12): the paper's
    measurement protocol — a dummy message initializes the layers, then
    fixed-size messages are pushed/popped and the means reported. *)

open Podopt_eventsys

type measurement = {
  size : int;
  push_mean : float;  (** units per message, application -> socket *)
  pop_mean : float;   (** units per message, socket -> application *)
}

(** 64, 128, 256, 512, 1024, 2048 — the Fig. 12 x-axis. *)
val paper_sizes : int list

val create :
  ?costs:Costs.model -> ?config:Podopt_seccomm.Seccomm.config -> unit -> Runtime.t

(** Deterministic message payload. *)
val message : size:int -> int -> bytes

(** Push a message and return the wire bytes it produced. *)
val push_collect : Runtime.t -> bytes -> bytes

(** A handful of round trips, used as the optimizer's profiling
    workload. *)
val profile_workload : Runtime.t -> unit -> unit

(** The Fig. 12 protocol for one packet size. *)
val measure : Runtime.t -> size:int -> rounds:int -> measurement

(** Does pop reproduce the pushed plaintext? *)
val roundtrip_ok : Runtime.t -> size:int -> bool
