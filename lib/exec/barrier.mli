(** Reusable round barrier.

    [parties] participants call {!await}; every call blocks until all
    parties of the current round have arrived, then the round advances
    and everyone is released together.  The barrier is cyclic: the same
    [t] synchronizes every epoch of the broker's simulation loop (route
    on the coordinator / drain on the workers alternate strictly, which
    is what keeps shard state single-writer at every instant). *)

type t

(** Raises [Invalid_argument] when [parties <= 0]. *)
val create : parties:int -> t

val parties : t -> int

(** Arrive and block until all parties of this round have arrived. *)
val await : t -> unit

(** Completed rounds so far (monotone; for tests and introspection). *)
val rounds : t -> int
