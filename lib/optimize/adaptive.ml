(* On-line adaptive re-optimization (Sec. 5: "on-line analysis and
   optimization ... are potential extensions to this work").

   Instead of the paper's off-line, manual profile-then-optimize cycle,
   this controller keeps event tracing enabled, watches the runtime's
   fallback counter, and re-runs analyze/apply from the accumulated trace
   whenever the installed super-handlers stop matching the live bindings.
   Correctness is unaffected (the guards already ensure that); this
   merely restores the fast path automatically after reconfiguration.

   The controller also accumulates every analyzed trace window into a
   persistent profile graph ([profile_snapshot]): the event-graph
   counters survive the trace clears that follow each re-optimization,
   so a whole run's observations can be serialized into a profile store
   and warm-start the next run ([warm_start]). *)

open Podopt_eventsys
open Podopt_profile

type policy = {
  fallback_limit : int;   (* re-optimize after this many fallbacks *)
  min_trace : int;        (* but only once the trace has this many entries *)
  threshold : int;        (* analysis threshold W *)
  strategy : Plan.chain_strategy;
  max_trace : int;        (* bound the trace to this length *)
  compile : bool;         (* compile super-handlers (vs interpret the HIR) *)
  batch : bool;           (* install super-handlers as batch entries *)
  max_batch : int;        (* clamp for the depth model's preferred width *)
}

let default_policy =
  {
    fallback_limit = 32;
    min_trace = 200;
    threshold = Driver.default_threshold;
    strategy = Plan.Monolithic;
    max_trace = 100_000;
    compile = true;
    batch = false;
    max_batch = 16;
  }

(* Inconsistent knobs used to be accepted silently: a negative
   fallback_limit re-optimized every batch, min_trace > max_trace could
   never trigger (the bound truncates below the minimum), and a
   non-positive threshold made every edge "hot".  Reject them all at
   construction. *)
let validate_policy (p : policy) =
  let fail fmt = Format.kasprintf invalid_arg fmt in
  if p.fallback_limit <= 0 then
    fail "Adaptive.create: fallback_limit %d must be positive" p.fallback_limit;
  if p.min_trace <= 0 then
    fail "Adaptive.create: min_trace %d must be positive" p.min_trace;
  if p.max_trace <= 0 then
    fail "Adaptive.create: max_trace %d must be positive" p.max_trace;
  if p.threshold <= 0 then
    fail "Adaptive.create: threshold %d must be positive" p.threshold;
  if p.min_trace > p.max_trace then
    fail "Adaptive.create: min_trace %d exceeds max_trace %d (re-optimization could never trigger)"
      p.min_trace p.max_trace;
  if p.max_batch <= 0 then
    fail "Adaptive.create: max_batch %d must be positive" p.max_batch

type t = {
  rt : Runtime.t;
  policy : policy;
  profile : Event_graph.t;
      (* cumulative graph of every trace window already analyzed and
         cleared; [profile_snapshot] adds the live trace on top *)
  mutable trace_seen : int;  (* trace entries folded into [profile] *)
  mutable fallbacks_at_last_opt : int;
  mutable reoptimizations : int;
  mutable warm_installed : int;  (* super-handlers installed by warm_start *)
  mutable warm_stale : int;      (* profile events warm_start rejected *)
  (* the depth model: an exact depth -> count map of observed drained
     batch sizes.  [preferred_width] reads its median; the whole map
     persists through the profile store so warm starts begin batched
     at the width the last runs earned. *)
  depths : (int, int) Hashtbl.t;
  mutable depth_obs : int;
}

(* Create the controller and enable continuous event tracing.  The
   runtime keeps paying the (cheap) trace-recording cost; that is the
   price of on-line profiling.  Raises [Invalid_argument] on an
   inconsistent policy. *)
let create ?(policy = default_policy) (rt : Runtime.t) : t =
  validate_policy policy;
  Trace.enable_events rt.Runtime.trace;
  {
    rt;
    policy;
    profile = Event_graph.create ();
    trace_seen = 0;
    fallbacks_at_last_opt = 0;
    reoptimizations = 0;
    warm_installed = 0;
    warm_stale = 0;
    depths = Hashtbl.create 16;
    depth_obs = 0;
  }

let policy (t : t) = t.policy

let fallbacks_since_last (t : t) =
  let current =
    t.rt.Runtime.stats.Runtime.fallbacks + t.rt.Runtime.stats.Runtime.segment_fallbacks
  in
  (* the application may reset runtime measurements at any time; detect
     the counter going backwards and re-baseline *)
  if current < t.fallbacks_at_last_opt then t.fallbacks_at_last_opt <- 0;
  current - t.fallbacks_at_last_opt

let should_reoptimize (t : t) : bool =
  Trace.length t.rt.Runtime.trace >= t.policy.min_trace
  && ((* nothing installed yet: perform the initial optimization *)
      Runtime.optimized_events t.rt = []
     || fallbacks_since_last t >= t.policy.fallback_limit)

(* Fold the live trace window into the cumulative profile.  Called just
   before the window is cleared, so no entry is counted twice.  (Entries
   dropped by [tick]'s truncation are lost to the profile — a bounded,
   documented loss: the profile is a sampling aid, not an audit log.) *)
let absorb_trace (t : t) =
  let len = Trace.length t.rt.Runtime.trace in
  if len > 0 then begin
    Event_graph.merge_into ~into:t.profile
      (Event_graph.of_trace t.rt.Runtime.trace);
    t.trace_seen <- t.trace_seen + len
  end

(* Re-analyze from the accumulated trace and reinstall.  Returns the
   applied report when a re-optimization happened. *)
let reoptimize (t : t) : Driver.applied option =
  let plan =
    Driver.analyze ~threshold:t.policy.threshold ~strategy:t.policy.strategy
      ~batch:t.policy.batch t.rt
  in
  if plan.Plan.actions = [] then None
  else begin
    let applied = Driver.apply ~compile:t.policy.compile t.rt plan in
    t.fallbacks_at_last_opt <-
      t.rt.Runtime.stats.Runtime.fallbacks
      + t.rt.Runtime.stats.Runtime.segment_fallbacks;
    t.reoptimizations <- t.reoptimizations + 1;
    absorb_trace t;
    Trace.clear t.rt.Runtime.trace;
    Some applied
  end

(* Poll: call periodically (e.g. from the application's idle loop).
   Keeps the trace bounded and re-optimizes when the policy triggers.
   Bounding retains the newest half of the window rather than clearing:
   dropping the whole trace would discard all profile history and stall
   re-optimization until [min_trace] entries rebuild from scratch. *)
let tick (t : t) : Driver.applied option =
  if Trace.length t.rt.Runtime.trace > t.policy.max_trace then
    Trace.truncate_oldest t.rt.Runtime.trace ~keep:(t.policy.max_trace / 2);
  if should_reoptimize t then reoptimize t else None

let reoptimizations (t : t) = t.reoptimizations

(* --- the depth model ---------------------------------------------------- *)

(* Record one drained-batch size (non-positive sizes — idle pumps — are
   not depth evidence and are ignored). *)
let observe_depth (t : t) d =
  if d > 0 then begin
    Hashtbl.replace t.depths d
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.depths d));
    t.depth_obs <- t.depth_obs + 1
  end

let depth_observations (t : t) = t.depth_obs

(* Sorted (depth, count) pairs — what the profile store serializes. *)
let depth_snapshot (t : t) : (int * int) list =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) t.depths []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Warm-start seeding from stored depth observations. *)
let seed_depths (t : t) (pairs : (int * int) list) =
  List.iter
    (fun (d, c) ->
      if d > 0 && c > 0 then begin
        Hashtbl.replace t.depths d
          (c + Option.value ~default:0 (Hashtbl.find_opt t.depths d));
        t.depth_obs <- t.depth_obs + c
      end)
    pairs

(* The window width the model currently prefers: the largest power of
   two at most the median observed depth, clamped to [1, max_batch].
   Powers of two keep the choice stable under small depth jitter; the
   median (not the mean) keeps one deep flash-crowd batch from blowing
   the width up.  1 — plain unwindowed dispatch — until evidence
   arrives. *)
let preferred_width (t : t) : int =
  if t.depth_obs = 0 then 1
  else begin
    let rank = Stdlib.max 1 (((50 * t.depth_obs) + 99) / 100) in
    let rec median seen = function
      | [] -> 1
      | (d, c) :: rest -> if seen + c >= rank then d else median (seen + c) rest
    in
    let med = median 0 (depth_snapshot t) in
    let rec pow2 p = if p * 2 <= med then pow2 (p * 2) else p in
    Stdlib.min (pow2 1) (Stdlib.max 1 t.policy.max_batch)
  end

(* --- the persistent-profile surface ------------------------------------ *)

(* Everything observed so far: the cumulative profile plus the live
   (not-yet-cleared) trace window, as a fresh graph. *)
let profile_snapshot (t : t) : Event_graph.t =
  let g = Event_graph.create () in
  Event_graph.merge_into ~into:g t.profile;
  Event_graph.merge_into ~into:g (Event_graph.of_trace t.rt.Runtime.trace);
  g

let profile_trace_entries (t : t) =
  t.trace_seen + Trace.length t.rt.Runtime.trace

(* Crash-recovery restore: fold a checkpointed profile graph back into
   the cumulative profile, crediting the trace entries it summarizes.
   The checkpointed graph already contains every window the dead
   controller absorbed plus its live trace, so a freshly created
   controller that absorbs it resumes profiling where the dead one
   stopped. *)
let absorb_graph (t : t) ~(graph : Event_graph.t) ~trace_entries =
  Event_graph.merge_into ~into:t.profile graph;
  t.trace_seen <- t.trace_seen + Stdlib.max 0 trace_entries

(* Ordered handler names bound to [event] right now — the binding
   signature a stored profile is checked against. *)
let live_signature (rt : Runtime.t) event =
  List.map (fun (h : Handler.t) -> h.Handler.name) (Runtime.handlers rt event)

type warm = {
  installed : int;     (* events that got super-handlers before any packet *)
  stale_events : int;  (* profile events rejected by the signature check *)
}

(* Warm start: derive a plan from a stored (merged, cross-run) profile
   graph and install it before any traffic arrives.  Safety is layered:
   (1) any plan action covering an event whose stored binding signature
   differs from the live bindings — or was recorded inconsistently
   ([signatures] omits it) — is dropped here as stale; (2) whatever is
   installed still sits behind the runtime's binding-version guards, so
   even a wrong profile degrades to generic dispatch (and trips the
   breaker) rather than misbehaving. *)
let warm_start (t : t) ~(graph : Event_graph.t)
    ~(signatures : (string * string list) list) : warm =
  let plan =
    Driver.plan_of_graph ~threshold:t.policy.threshold ~strategy:t.policy.strategy
      ~batch:t.policy.batch t.rt graph
  in
  let stale = ref [] in
  let fresh event =
    match List.assoc_opt event signatures with
    | Some stored when stored = live_signature t.rt event -> true
    | Some _ | None ->
      if not (List.mem event !stale) then stale := event :: !stale;
      false
  in
  let actions =
    List.filter
      (fun action ->
        let covered =
          match action with
          | Plan.Merge_event e -> [ e ]
          | Plan.Merge_chain { events; _ } -> events
        in
        (* [List.for_all] would short-circuit past later stale events;
           evaluate every event so the stale count is complete *)
        List.fold_left (fun acc e -> fresh e && acc) true covered)
      plan.Plan.actions
  in
  let stale_events = List.length !stale in
  t.warm_stale <- t.warm_stale + stale_events;
  if actions = [] then { installed = 0; stale_events }
  else begin
    let applied =
      Driver.apply ~compile:t.policy.compile t.rt { plan with Plan.actions }
    in
    t.fallbacks_at_last_opt <-
      t.rt.Runtime.stats.Runtime.fallbacks
      + t.rt.Runtime.stats.Runtime.segment_fallbacks;
    let installed = List.length applied.Driver.installed in
    t.warm_installed <- t.warm_installed + installed;
    { installed; stale_events }
  end

let warm_installed (t : t) = t.warm_installed
let warm_stale (t : t) = t.warm_stale
