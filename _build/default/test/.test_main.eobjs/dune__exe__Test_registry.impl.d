test/test_registry.ml: Alcotest Event Handler List Podopt Registry
