lib/optimize/chain_merge.ml: Array Ast Fresh List Podopt_hir Rewrite Subst
