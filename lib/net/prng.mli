(** Deterministic xorshift64* PRNG for loss/jitter decisions, so network
    experiments reproduce exactly run-to-run. *)

type t

(** Seed 0 is remapped to a fixed non-zero constant. *)
val create : seed:int64 -> t

val next : t -> int64

(** Uniform in [0, bound); raises [Invalid_argument] on bound <= 0. *)
val int : t -> int -> int

(** True with probability permille/1000. *)
val bool : t -> permille:int -> bool

(** The current stream position, for checkpointing.  Feeding it back
    through {!set_state} resumes the stream exactly where it was. *)
val state : t -> int64

(** Restore a stream position captured by {!state}.  The xorshift state
    must never be 0, so 0 is remapped like {!create}'s seed. *)
val set_state : t -> int64 -> unit
