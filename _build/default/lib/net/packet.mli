(** Network packets and their flat wire encoding (links carry bytes,
    like a real UDP socket). *)

type t = {
  src : string;
  dst : string;
  seq : int;
  payload : bytes;
}

val make : src:string -> dst:string -> seq:int -> bytes -> t
val size : t -> int
val encode : t -> bytes

exception Decode_error

val decode : bytes -> t
