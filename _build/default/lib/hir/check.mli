(** Static checking of HIR programs.

    Handlers are registered dynamically, so a misspelled variable or a
    wrong-arity primitive call would otherwise only surface when the
    handler first runs.  The checker reports use-before-assignment,
    unknown callees, primitive arity mismatches, unreachable code, and
    (advisorily) raises of events with no known binding. *)

type issue =
  | Unbound_variable of { proc : string; var : string }
  | Unknown_callee of { proc : string; callee : string }
  | Arity_mismatch of { proc : string; callee : string; expected : int; got : int }
  | Unreachable_code of { proc : string }
  | Unknown_event of { proc : string; event : string }  (** advisory *)

val pp_issue : Format.formatter -> issue -> unit
val is_advisory : issue -> bool

(** [check_proc prog p] analyses one procedure.  Definite assignment
    joins branches by intersection and assumes loop bodies may not run.
    [known_events] enables the advisory raise check. *)
val check_proc : ?known_events:string list -> Ast.program -> Ast.proc -> issue list

val check_program : ?known_events:string list -> Ast.program -> issue list

(** Issues that are not advisory. *)
val errors : issue list -> issue list
