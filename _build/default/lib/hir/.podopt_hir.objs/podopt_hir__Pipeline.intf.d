lib/hir/pipeline.mli: Ast
