lib/eventsys/runtime.mli: Ast Compile Costs Equeue Event Format Handler Hashtbl Interp Podopt_hir Registry Trace Value Vclock
