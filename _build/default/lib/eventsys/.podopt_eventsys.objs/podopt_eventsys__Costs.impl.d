lib/eventsys/costs.ml:
