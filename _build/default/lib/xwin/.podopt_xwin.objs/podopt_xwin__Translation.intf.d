lib/xwin/translation.mli: Xevent
