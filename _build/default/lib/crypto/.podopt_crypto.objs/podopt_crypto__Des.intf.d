lib/crypto/des.mli:
