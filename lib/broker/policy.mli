(** Broker overload policies: what to do when a shard's bounded ingress
    queue is full (shedding), and how rejected clients retry
    (exponential backoff). *)

(** What to shed when an ingress queue is at its limit. *)
type shed =
  | Drop_newest  (** reject the arriving event *)
  | Drop_oldest  (** evict the queue head to make room for the arrival *)

val shed_of_string : string -> (shed, string) result
val shed_to_string : shed -> string

(** Client-side retry schedule for shed events: the [n]-th retry waits
    [base * factor^(n-1)] virtual units, capped at [cap]; after
    [max_retries] rejections of the same event the client gives up. *)
type backoff = {
  base : int;
  factor : int;
  cap : int;
  max_retries : int;
}

val default_backoff : backoff

(** Delay before retry number [attempt] (1-based; [Invalid_argument]
    below 1). *)
val delay : backoff -> attempt:int -> int

(** Whether rejection number [attempt] (1-based; [Invalid_argument]
    below 1) exceeds the schedule — the single definition of "give up",
    so callers never open-code a [max_retries] comparison. *)
val exhausted : backoff -> attempt:int -> bool
