(** Fixed pool of worker domains driven in epochs.

    {!create} spawns [domains] workers, each blocked on its own
    {!Chan}.  {!run} is one epoch: every worker receives the same task
    function, applies it to its own worker index, and the caller joins
    the pool at a {!Barrier} — when {!run} returns, every worker has
    finished and gone back to sleep.  Work partitioning is the caller's
    contract (the broker pins shard [i] to worker [i mod domains]), so
    the per-worker work — and therefore everything each worker mutates —
    is identical from run to run regardless of scheduling.

    Tasks run on worker domains: they must only touch state the caller
    partitioned to that worker.  An exception in a task is caught on
    the worker (the epoch still completes for everyone) and re-raised
    from {!run} on the caller — the first one wins when several workers
    fail in the same epoch. *)

type t

(** Spawn the workers.  Raises [Invalid_argument] when [domains <= 0]. *)
val create : domains:int -> t

(** Number of worker domains. *)
val size : t -> int

(** [run t f] executes [f w] on worker [w] for every [w] in
    [0 .. size-1], blocking until all are done.  Raises the first
    worker exception, if any.  A raising task still completes the
    epoch barrier — every other worker finishes its task before the
    exception reaches the caller — and leaves the pool fully usable
    for subsequent epochs (the crash-recovery supervisor relies on
    both).  Raises [Invalid_argument] after {!shutdown}. *)
val run : t -> (int -> unit) -> unit

(** Close every channel and join the worker domains.  Idempotent. *)
val shutdown : t -> unit
