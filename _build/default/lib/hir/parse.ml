(* Front-end facade: source text to HIR. *)

exception Error of string

let program (src : string) : Ast.program =
  try Parser.parse_program (Lexer.tokenize src) with
  | Lexer.Error (msg, line) -> raise (Error (Printf.sprintf "line %d: %s" line msg))
  | Parser.Parse_error msg -> raise (Error msg)

let proc (src : string) : Ast.proc =
  match program src with
  | [ p ] -> p
  | ps -> raise (Error (Printf.sprintf "expected exactly one procedure, got %d" (List.length ps)))

(* Parse the body of a single handler given inline, e.g. for tests. *)
let block (src : string) : Ast.block =
  (proc ("handler __anon() " ^ src)).body
