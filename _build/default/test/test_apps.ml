(* Application-level behaviour: the video player's frame-budget model
   (the Fig. 10 execution semantics) and the messenger measurement
   protocol. *)

open Podopt
module Video = Podopt_apps.Video_player
module Messenger = Podopt_apps.Secure_messenger

let test_play_duration_when_keeping_up () =
  (* an optimized player at a low rate keeps up: total time stays within
     a percent of the content duration.  (A handful of boundary "misses"
     are model artifacts: a timed ack due just before a frame boundary
     finishes just after it.) *)
  let rt = Video.create () in
  ignore
    (Driver.profile_and_optimize ~threshold:20 rt
       ~workload:(fun () -> Video.profile_workload rt ~frames:150 ()));
  let r = Video.play rt ~rate:10 ~seconds:3 in
  let content = 3 * Video.ticks_per_second in
  Alcotest.(check int) "frames" 30 r.Video.frames;
  Alcotest.(check bool) "only boundary misses" true (r.Video.deadline_misses <= 5);
  Alcotest.(check bool)
    (Printf.sprintf "total %d within 1%% of %d" r.Video.total_time content)
    true
    (r.Video.total_time - content < content / 100)

let test_play_falls_behind_when_overloaded () =
  (* the unoptimized player at 25 fps overruns: total exceeds content *)
  let rt = Video.create () in
  Video.profile_workload rt ~frames:150 ();
  let r = Video.play rt ~rate:25 ~seconds:2 in
  Alcotest.(check bool) "misses happen" true (r.Video.deadline_misses > 10);
  Alcotest.(check bool) "total > content" true
    (r.Video.total_time > 2 * Video.ticks_per_second)

let test_handler_time_below_total () =
  let rt = Video.create () in
  let r = Video.play rt ~rate:15 ~seconds:2 in
  Alcotest.(check bool) "handler <= total" true (r.Video.handler_time <= r.Video.total_time);
  Alcotest.(check bool) "handler > 0" true (r.Video.handler_time > 0)

let test_frame_payload_deterministic () =
  Alcotest.(check bytes) "same frame" (Video.frame_payload 7) (Video.frame_payload 7);
  Alcotest.(check bool) "key frames bigger" true
    (Bytes.length (Video.frame_payload 10) > Bytes.length (Video.frame_payload 11))

let test_messenger_message_deterministic () =
  Alcotest.(check bytes) "deterministic" (Messenger.message ~size:64 3)
    (Messenger.message ~size:64 3);
  Alcotest.(check int) "size respected" 64 (Bytes.length (Messenger.message ~size:64 3))

let test_messenger_measure_rounds () =
  let rt = Messenger.create () in
  let m = Messenger.measure rt ~size:128 ~rounds:10 in
  Alcotest.(check int) "size recorded" 128 m.Messenger.size;
  Alcotest.(check bool) "positive means" true
    (m.Messenger.push_mean > 0.0 && m.Messenger.pop_mean > 0.0);
  (* push and pop are close: same layers, decrypt slightly heavier *)
  Alcotest.(check bool) "pop >= push - epsilon" true
    (m.Messenger.pop_mean >= m.Messenger.push_mean *. 0.8)

let suite =
  [
    Alcotest.test_case "play keeps up" `Quick test_play_duration_when_keeping_up;
    Alcotest.test_case "play falls behind" `Quick test_play_falls_behind_when_overloaded;
    Alcotest.test_case "handler below total" `Quick test_handler_time_below_total;
    Alcotest.test_case "frame payload deterministic" `Quick test_frame_payload_deterministic;
    Alcotest.test_case "message deterministic" `Quick test_messenger_message_deterministic;
    Alcotest.test_case "measure protocol" `Quick test_messenger_measure_rounds;
  ]
