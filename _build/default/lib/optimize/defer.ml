(* Deferred pair execution (Sec. 5): "perform minimal processing for A
   and defer the bulk of handling A until the next event occurs.  If the
   next event is B, optimized code for (AB) can then be executed."

   For a deferred event A with follower set {B, C, ...}, each follower
   gets a jointly compiled (A ++ follower) body: A's merged super-handler
   concatenated with the follower's, the follower's positional arguments
   shifted past A's arity, and the whole thing run through the compiler
   passes — so optimizations (CSE, constant propagation) work across the
   two events' former boundary.  Followers without a pair fall back to
   "flush A alone, then handle the follower normally".

   Deferral is only sound when nothing between A and the next event
   observes A's effects; it is therefore opt-in per event rather than
   part of the automatic driver plan.  Events whose handlers raise
   further events or halt are rejected. *)

open Podopt_hir
open Podopt_eventsys

exception Not_deferrable of string

let not_deferrable fmt = Format.kasprintf (fun s -> raise (Not_deferrable s)) fmt

(* Shift every [Arg i] by [delta]. *)
let shift_args (delta : int) (b : Ast.block) : Ast.block =
  Rewrite.block_exprs
    (function Ast.Arg i -> Ast.Arg (i + delta) | e -> e)
    b

(* Build and install the deferral entry for [event] with the given
   follower events. *)
let install ?(passes = Pipeline.default_passes) (rt : Runtime.t) ~(event : string)
    ~(followers : string list) : unit =
  let prog = Runtime.program rt in
  let merged_a, arity_a = Superhandler.merge rt prog ~event in
  if Rewrite.contains_raise merged_a.Ast.body then
    not_deferrable "handlers of %s raise events; deferring them would reorder" event;
  if Chain_merge.contains_halt merged_a.Ast.body then
    not_deferrable "handlers of %s may halt event execution" event;
  let body_a = Pipeline.optimize_block ~passes prog merged_a.Ast.body in
  let alone_proc = { merged_a with Ast.name = "__defer_" ^ event; Ast.body = body_a } in
  let alone = Compile.proc (prog @ [ alone_proc ]) alone_proc.Ast.name in
  let pairs =
    List.filter_map
      (fun follower ->
        match Superhandler.merge rt prog ~event:follower with
        | exception Superhandler.Not_mergeable _ -> None
        | merged_b, arity_b ->
          let shifted = shift_args arity_a merged_b.Ast.body in
          let body = Pipeline.optimize_block ~passes prog (body_a @ shifted) in
          let pair_proc =
            { Ast.name = Printf.sprintf "__defer_%s__%s" event follower;
              params = [];
              body }
          in
          let compiled = Compile.proc (prog @ [ pair_proc ]) pair_proc.Ast.name in
          Some (follower, arity_b, compiled))
      followers
  in
  Runtime.install_deferred rt ~event
    ~covered:(event :: List.map (fun (f, _, _) -> f) pairs)
    ~arity:arity_a ~alone pairs

(* Followers worth pairing with [event], read off the (reduced) event
   graph: successors receiving at least [min_share] of its outgoing
   weight. *)
let choose_followers ?(min_share = 0.25) (g : Podopt_profile.Event_graph.t)
    ~(event : string) : string list =
  let succs = Podopt_profile.Event_graph.successors g event in
  let total =
    List.fold_left (fun acc e -> acc + e.Podopt_profile.Event_graph.weight) 0 succs
  in
  if total = 0 then []
  else
    List.filter_map
      (fun (e : Podopt_profile.Event_graph.edge) ->
        if float_of_int e.Podopt_profile.Event_graph.weight
           >= min_share *. float_of_int total
        then Some e.Podopt_profile.Event_graph.dst
        else None)
      succs
    |> List.sort compare
