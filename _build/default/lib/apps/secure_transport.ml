(* Stacked composite protocols: SecComm over CTP over a lossy link.

   Cactus services compose by stacking composite protocols; here the
   secure channel's wire output feeds the transport's send path on the
   sender, and the transport's reassembled messages feed the secure
   channel's pop path on the receiver:

     app --> SecComm push --(udp_tx)--> CTP send --(tx segments)-->
       lossy link --> CTP receive/reassemble --(msg_deliver)-->
         SecComm pop --(deliver)--> app

   Sender and receiver are separate runtimes with independent virtual
   clocks, connected only by the simulated link.  Fragment loss corrupts
   a reassembled message; the KeyedMD5 layer detects it and halts that
   message's delivery (counted in [mac_failures]), so the end-to-end
   delivered messages are always intact. *)

open Podopt_eventsys
module V = Podopt_hir.Value
module Sec = Podopt_seccomm.Seccomm
module Ctp = Podopt_ctp.Ctp
open Podopt_net

type t = {
  sender : Runtime.t;    (* SecComm push + CTP sender *)
  receiver : Runtime.t;  (* CTP receiver + SecComm pop *)
  link : Link.t;
  mutable sent : int;
  mutable delivered : (int * bytes) list;  (* reversed arrival order *)
}

let secure_config = { Sec.paper_config with Sec.mac = true }

(* Wire the sender: SecComm wire bytes become CTP messages; CTP segments
   go onto the link. *)
let wire_sender (t : t) =
  Runtime.on_emit t.sender (fun tag args ->
      match tag, args with
      | "udp_tx", [ V.Bytes wire ] -> Ctp.send t.sender ~priority:1 wire
      | "tx", [ V.Bytes seg; V.Int n ] ->
        Link.send t.link t.receiver ~deliver_event:"LinkIn"
          (Packet.make ~src:"sender" ~dst:"receiver" ~seq:n seg)
      | _ -> ())

(* Wire the receiver: link packets enter the CTP receive path; whole
   reassembled messages are popped up the secure channel; decrypted
   plaintext reaches the application. *)
let wire_receiver (t : t) =
  Runtime.bind t.receiver ~event:"LinkIn"
    (Handler.native "link_in" (fun host args ->
         match args with
         | [ V.Bytes raw ] ->
           let packet = Packet.decode raw in
           host.Podopt_hir.Interp.raise_event Podopt_ctp.Events.rcv_packet
             Podopt_hir.Ast.Sync
             [ V.Bytes packet.Packet.payload ]
         | _ -> ()));
  Runtime.on_emit t.receiver (fun tag args ->
      match tag, args with
      | "msg_deliver", [ V.Bytes wire; V.Int _msgid ] -> Sec.pop t.receiver wire
      | "deliver", [ V.Bytes plain ] ->
        t.delivered <- (List.length t.delivered, plain) :: t.delivered
      | _ -> ())

(* Build the stack.  The receiver runtime hosts both the CTP receiving
   micro-protocols and a SecComm instance; the sender hosts SecComm and
   the CTP sender. *)
let create ?(latency = 200) ?(jitter = 0) ?(loss_permille = 0) ?(seed = 7L) () : t =
  let sender = Sec.create ~config:secure_config () in
  Podopt_cactus.Composite.instantiate sender (Ctp.sender_composite ());
  Ctp.open_session sender;
  sender.Runtime.emit_log_enabled <- false;
  let receiver = Sec.create ~config:secure_config () in
  Podopt_cactus.Composite.instantiate receiver (Ctp.full_composite ());
  receiver.Runtime.emit_log_enabled <- false;
  let t =
    {
      sender;
      receiver;
      link = Link.create ~latency ~jitter ~loss_permille ~seed ();
      sent = 0;
      delivered = [];
    }
  in
  wire_sender t;
  wire_receiver t;
  t

(* Send one application message end to end (encrypt, fragment,
   transmit). *)
let send (t : t) (msg : bytes) : unit =
  t.sent <- t.sent + 1;
  Sec.push t.sender msg

(* Drain both sides: the sender's timers and the receiver's pending link
   deliveries. *)
let settle (t : t) : unit =
  Runtime.run t.sender;
  Runtime.run t.receiver

let delivered (t : t) : bytes list = List.rev_map snd t.delivered
let mac_failures (t : t) : int = Sec.stat t.receiver "mac_failures"
let link_stats (t : t) = Link.stats t.link

(* Optimize both sides with the paper's pipeline, using a representative
   exchange as the profiling workload. *)
let optimize (t : t) : unit =
  let workload () =
    for i = 1 to 15 do
      send t (Bytes.make (200 + (i * 97 mod 800)) (Char.chr (i land 0xff)))
    done;
    settle t
  in
  ignore (Podopt_optimize.Driver.profile_and_optimize ~threshold:10 t.sender
            ~workload:(fun () -> workload ()));
  ignore
    (Podopt_optimize.Driver.profile_and_optimize ~threshold:10 t.receiver
       ~workload:(fun () -> workload ()))
