lib/apps/editor.mli: Client Podopt_eventsys Podopt_xwin Widget
