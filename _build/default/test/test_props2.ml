(* Second property suite: data-structure and substrate invariants. *)

open Podopt

(* --- Value marshaling over random values -------------------------------- *)

let gen_value : Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Value.Unit;
                map (fun b -> Value.Bool b) bool;
                map (fun i -> Value.Int i) int;
                map (fun f -> Value.Float f) float;
                map (fun s -> Value.Str s) string_small;
                map (fun s -> Value.Bytes (Bytes.of_string s)) string_small;
              ]
          else
            oneof
              [
                map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
                map (fun l -> Value.List l) (list_size (int_range 0 4) (self (n / 2)));
                map (fun i -> Value.Int i) int;
              ])
        (min n 4))

let prop_marshal_roundtrip =
  QCheck2.Test.make ~name:"marshal/unmarshal roundtrip" ~count:500
    ~print:(fun vs -> String.concat "; " (List.map Value.to_string vs))
    QCheck2.Gen.(list_size (int_range 0 5) gen_value)
    (fun vs ->
      let back = Value.unmarshal (Value.marshal vs) in
      List.length back = List.length vs && List.for_all2 Value.equal vs back)

(* --- DES / XOR roundtrips ------------------------------------------------ *)

let prop_des_roundtrip =
  QCheck2.Test.make ~name:"DES ECB roundtrip" ~count:200
    ~print:(fun (k, m) -> Printf.sprintf "key=%S msg=%d bytes" k (String.length m))
    QCheck2.Gen.(pair (string_size (return 8)) string_small)
    (fun (key, msg) ->
      let ks = Podopt_crypto.Des.key_of_bytes (Bytes.of_string key) in
      let ct = Podopt_crypto.Des.encrypt_ecb ks (Bytes.of_string msg) in
      Bytes.to_string (Podopt_crypto.Des.decrypt_ecb ks ct) = msg)

let prop_des_cbc_roundtrip =
  QCheck2.Test.make ~name:"DES CBC roundtrip" ~count:200
    ~print:(fun (k, m) -> Printf.sprintf "key=%S msg=%d bytes" k (String.length m))
    QCheck2.Gen.(pair (string_size (return 8)) string_small)
    (fun (key, msg) ->
      let ks = Podopt_crypto.Des.key_of_bytes (Bytes.of_string key) in
      let ct = Podopt_crypto.Des.encrypt_cbc ks ~iv:0x1234L (Bytes.of_string msg) in
      Bytes.to_string (Podopt_crypto.Des.decrypt_cbc ks ~iv:0x1234L ct) = msg)

let prop_xor_involution =
  QCheck2.Test.make ~name:"XOR cipher involution" ~count:300
    ~print:(fun (k, m) -> Printf.sprintf "key=%S msg=%S" k m)
    QCheck2.Gen.(pair (string_size (int_range 1 16)) string_small)
    (fun (key, msg) ->
      let key = Bytes.of_string key in
      let data = Bytes.of_string msg in
      Bytes.equal (Podopt_crypto.Xor_cipher.apply ~key (Podopt_crypto.Xor_cipher.apply ~key data)) data)

let prop_hmac_tamper_detection =
  QCheck2.Test.make ~name:"HMAC detects single-byte tampering" ~count:200
    ~print:(fun (k, m, i) -> Printf.sprintf "key=%S msg=%S flip@%d" k m i)
    QCheck2.Gen.(
      triple (string_size (int_range 1 20)) (string_size (int_range 1 40)) small_nat)
    (fun (key, msg, i) ->
      let key = Bytes.of_string key in
      let data = Bytes.of_string msg in
      let mac = Podopt_crypto.Hmac_md5.compute ~key data in
      let tampered = Bytes.copy data in
      let pos = i mod Bytes.length tampered in
      Bytes.set tampered pos (Char.chr (Char.code (Bytes.get tampered pos) lxor 0x01));
      Podopt_crypto.Hmac_md5.verify ~key ~mac data
      && not (Podopt_crypto.Hmac_md5.verify ~key ~mac tampered))

(* --- Equeue against a list model ---------------------------------------- *)

let prop_equeue_sorted_stable =
  QCheck2.Test.make ~name:"equeue pops sorted, FIFO within time" ~count:500
    ~print:(fun dues -> String.concat "," (List.map string_of_int dues))
    QCheck2.Gen.(list_size (int_range 0 60) (int_range 0 20))
    (fun dues ->
      let q = Podopt_eventsys.Equeue.create () in
      List.iteri (fun i due -> Podopt_eventsys.Equeue.push q ~due (i, due)) dues;
      (* model: stable sort by due *)
      let expected =
        List.mapi (fun i due -> (i, due)) dues
        |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
      in
      let rec drain acc =
        match Podopt_eventsys.Equeue.pop q with
        | None -> List.rev acc
        | Some (_, payload) -> drain (payload :: acc)
      in
      drain [] = expected)

let prop_equeue_remove_if =
  QCheck2.Test.make ~name:"equeue remove_if removes exactly the matches" ~count:300
    ~print:(fun dues -> String.concat "," (List.map string_of_int dues))
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 15))
    (fun dues ->
      let q = Podopt_eventsys.Equeue.create () in
      List.iter (fun due -> Podopt_eventsys.Equeue.push q ~due due) dues;
      let removed = Podopt_eventsys.Equeue.remove_if q (fun d -> d mod 3 = 0) in
      let expected_removed = List.length (List.filter (fun d -> d mod 3 = 0) dues) in
      let rec drain acc =
        match Podopt_eventsys.Equeue.pop q with
        | None -> List.rev acc
        | Some (_, d) -> drain (d :: acc)
      in
      let rest = drain [] in
      removed = expected_removed
      && List.for_all (fun d -> d mod 3 <> 0) rest
      && List.length rest = List.length dues - expected_removed)

(* --- Dominators vs brute-force reachability ------------------------------ *)

(* a dominates b iff b is unreachable from the root once a is removed *)
let gen_edges : (string * string) list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let node = map (fun i -> Printf.sprintf "N%d" i) (int_range 0 6) in
  list_size (int_range 1 14) (pair node node)

let reachable_without edges ~root ~removed target =
  if target = removed then false
  else begin
    let adj = Hashtbl.create 16 in
    List.iter
      (fun (a, b) ->
        if a <> removed && b <> removed then
          Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
      edges;
    let seen = Hashtbl.create 16 in
    let rec go n =
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        List.iter go (Option.value ~default:[] (Hashtbl.find_opt adj n))
      end
    in
    if root <> removed then go root;
    Hashtbl.mem seen target
  end

let prop_dominators_match_bruteforce =
  QCheck2.Test.make ~name:"dominators = cut-vertex reachability" ~count:300
    ~print:(fun edges ->
      String.concat " " (List.map (fun (a, b) -> a ^ "->" ^ b) edges))
    gen_edges
    (fun edges ->
      let g = Event_graph.create () in
      List.iter (fun (a, b) -> Event_graph.add_edge g ~src:a ~dst:b Ast.Sync) edges;
      let root = fst (List.hd edges) in
      let d = Dominators.compute g ~root in
      let nodes = Dominators.reachable g ~root in
      (* for every reachable pair (a, b), a<>b, a<>root: dominance must
         equal "removing a disconnects b" *)
      let module SS = Set.Make (String) in
      SS.for_all
        (fun a ->
          SS.for_all
            (fun b ->
              a = b || a = root
              || Dominators.dominates d ~dominator:a ~node:b
                 = not (reachable_without edges ~root ~removed:a b))
            nodes)
        nodes)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_marshal_roundtrip;
      prop_des_roundtrip;
      prop_des_cbc_roundtrip;
      prop_xor_involution;
      prop_hmac_tamper_detection;
      prop_equeue_sorted_stable;
      prop_equeue_remove_if;
      prop_dominators_match_bruteforce;
    ]
