(** Fixed pool of worker domains driven in epochs.

    {!create} spawns [domains] workers, each blocked on its own
    {!Chan}.  One epoch wakes every worker, runs its task(s), and joins
    everyone — caller included — at a {!Barrier}; when the epoch call
    returns, every worker has finished and gone back to sleep.

    Two epoch shapes:
    {ul
    {- {!run} broadcasts the same closure to every worker (the
       historical static-partition mode: the caller pins work to worker
       indices, e.g. shard [i] on worker [i mod domains]);}
    {- {!run_steal} shares one stealable run-queue of work items: the
       coordinator freezes the item order, and idle workers claim slots
       with an atomic fetch-and-add ({!Deque}), so a worker stuck on a
       heavy item no longer serializes the epoch.  Which worker runs a
       slot is scheduling; that each slot runs exactly once is the
       invariant.}}

    Tasks run on worker domains: they must only touch state the caller
    partitioned to that worker ({!run}) or owned by the claimed item
    ({!run_steal}).  A task exception is caught on the worker — the
    epoch still completes for everyone — and re-raised from the epoch
    call on the caller.  When several tasks fail in one epoch, the
    first latched exception is re-raised wrapped in
    {!Epoch_failures} carrying the count of additionally suppressed
    failures; a lone failure is re-raised unwrapped. *)

type t

(** [Epoch_failures (first, suppressed)]: more than one task failed in
    the epoch; [first] is the first latched exception and [suppressed]
    the number of further failures whose exceptions were dropped. *)
exception Epoch_failures of exn * int

(** Spawn the workers.  Raises [Invalid_argument] when [domains <= 0]. *)
val create : domains:int -> t

(** Number of worker domains. *)
val size : t -> int

(** [run t f] executes [f w] on worker [w] for every [w] in
    [0 .. size-1], blocking until all are done.  Raises the latched
    worker exception, if any (wrapped in {!Epoch_failures} when more
    than one task failed).  A raising task still completes the epoch
    barrier — every other worker finishes its task before the exception
    reaches the caller — and leaves the pool fully usable for
    subsequent epochs (the crash-recovery supervisor relies on both).
    Raises [Invalid_argument] after {!shutdown}. *)
val run : t -> (int -> unit) -> unit

(** [run_steal t items f] runs [f ~worker ~slot items.(slot)] exactly
    once for every slot, work-stealing style: slots are claimed left to
    right by whichever worker is idle.  Blocks until every slot has
    run.  Item exceptions are latched per item (a poisoned item does
    not abandon the slots behind it) and re-raised as in {!run}.
    Determinism contract: each item must only touch state owned by that
    item, so results cannot depend on the claim schedule.  Raises
    [Invalid_argument] after {!shutdown}. *)
val run_steal : t -> 'a array -> (worker:int -> slot:int -> 'a -> unit) -> unit

(** Close every channel and join the worker domains.  Idempotent. *)
val shutdown : t -> unit
