(* Simulated network: deterministic loss, latency ordering, packet wire
   encoding. *)

open Podopt
open Podopt_net

let test_packet_roundtrip () =
  let p = Packet.make ~src:"a" ~dst:"b" ~seq:7 (Bytes.of_string "payload") in
  let p' = Packet.decode (Packet.encode p) in
  Alcotest.(check string) "src" p.Packet.src p'.Packet.src;
  Alcotest.(check string) "dst" p.Packet.dst p'.Packet.dst;
  Alcotest.(check int) "seq" p.Packet.seq p'.Packet.seq;
  Alcotest.(check string) "payload" "payload" (Bytes.to_string p'.Packet.payload)

let test_packet_decode_garbage () =
  Alcotest.check_raises "garbage" Packet.Decode_error (fun () ->
      ignore (Packet.decode (Bytes.of_string "not a packet")))

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L in
  let b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create ~seed:8L in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_prng_unbiased () =
  (* regression: [Prng.int] reduced the raw 63-bit draw with a plain
     modulo.  For bound 3*2^60 that makes residues below 2^61 land 3/4
     of the time instead of the uniform 2/3; rejection sampling restores
     uniformity. *)
  let bound = 3 * (1 lsl 60) in
  let cut = 1 lsl 61 in
  let t = Prng.create ~seed:42L in
  let n = 20_000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Prng.int t bound < cut then incr below
  done;
  let frac = float_of_int !below /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "uniform fraction below the cut (%.3f, want ~0.667)" frac)
    true
    (frac > 0.64 && frac < 0.69)

let mk_receiver () =
  let rt = Runtime.create ~program:(Parse.program "handler rx(w) { emit(\"rx\", w); }") () in
  Runtime.bind rt ~event:"Deliver" (Handler.hir' "rx");
  rt

let test_link_delivers_with_latency () =
  let rt = mk_receiver () in
  let link = Link.create ~latency:100 () in
  Link.send link rt ~deliver_event:"Deliver"
    (Packet.make ~src:"a" ~dst:"b" ~seq:1 (Bytes.of_string "x"));
  Alcotest.(check int) "queued not delivered" 0 (List.length (Runtime.emits rt));
  Runtime.run ~until:50 rt;
  Alcotest.(check int) "still in flight at t=50" 0 (List.length (Runtime.emits rt));
  Runtime.run rt;
  Alcotest.(check int) "delivered" 1 (List.length (Runtime.emits rt));
  Alcotest.(check bool) "clock advanced past latency" true (Runtime.now rt >= 100)

let test_link_loss_rate () =
  let rt = mk_receiver () in
  let link = Link.create ~latency:1 ~loss_permille:300 ~seed:9L () in
  for i = 1 to 1000 do
    Link.send link rt ~deliver_event:"Deliver"
      (Packet.make ~src:"a" ~dst:"b" ~seq:i (Bytes.of_string "x"))
  done;
  Runtime.run rt;
  let s = Link.stats link in
  Alcotest.(check int) "conservation" 1000 (s.Link.delivered + s.Link.dropped);
  Alcotest.(check bool)
    (Printf.sprintf "loss near 30%% (%d)" s.Link.dropped)
    true
    (s.Link.dropped > 230 && s.Link.dropped < 370);
  Alcotest.(check int) "emits match delivered" s.Link.delivered
    (List.length (Runtime.emits rt))

let test_link_jitter_varies_delay () =
  let rt = mk_receiver () in
  Trace.enable_events rt.Runtime.trace;
  let link = Link.create ~latency:10 ~jitter:50 ~seed:3L () in
  for i = 1 to 20 do
    Link.send link rt ~deliver_event:"Deliver"
      (Packet.make ~src:"a" ~dst:"b" ~seq:i (Bytes.of_string "x"))
  done;
  Runtime.run rt;
  (* with jitter, deliveries spread over distinct times *)
  let times =
    List.filter_map
      (function Trace.Event_raised _ -> None | Trace.Dispatch_begin _ -> None | _ -> None)
      (Trace.entries rt.Runtime.trace)
  in
  ignore times;
  Alcotest.(check int) "all delivered" 20 (List.length (Runtime.emits rt))

let suite =
  [
    Alcotest.test_case "packet roundtrip" `Quick test_packet_roundtrip;
    Alcotest.test_case "packet garbage" `Quick test_packet_decode_garbage;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng unbiased" `Quick test_prng_unbiased;
    Alcotest.test_case "latency" `Quick test_link_delivers_with_latency;
    Alcotest.test_case "loss rate" `Quick test_link_loss_rate;
    Alcotest.test_case "jitter" `Quick test_link_jitter_varies_delay;
  ]
