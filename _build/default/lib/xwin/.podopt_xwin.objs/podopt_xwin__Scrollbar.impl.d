lib/xwin/scrollbar.ml: Client Podopt_eventsys Podopt_hir Template Translation Value Widget
