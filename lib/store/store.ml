(* The persistent profile store: per-shard adaptive state serialized so
   one run's profile can warm-start the next — the off-line half of the
   paper's collect/analyze/optimize cycle, made durable.

   Same framing conventions as Podopt_profile.Trace_io and
   Podopt_replay.Log: one record per line, whitespace-separated fields,
   [#] comments, a [Format_error] on anything malformed.

   Format (version 2; version-1 files still load):

     V 2
     E <id> <kind> <shard> <dispatched> <trace_entries>   entry header
     N <event> <occurrences> <sync> <async> <timed>       graph node
     G <src> <dst> <weight> <sync> <async> <timed>        graph edge
     C <event> <event> ...                                hot chain
     H <event> <handler> <handler> ...                    binding signature
     D <depth> <count>                                    depth observation

   D lines (new in version 2) record the shard's drained-batch-depth
   model for the batch-width warm start; they appear in an entry's
   canonical body only when non-empty, so a version-1 entry's content
   id is unchanged by the upgrade.

   One entry per (run, shard).  An entry's [id] is the CRC-32 of its
   canonical body (every line after the id field, in canonical order),
   so the id names the *content*: two identical observations collapse to
   one entry.  A store is the id-sorted set of its entries, which makes
   [merge] a plain set union — associative, commutative, idempotent, and
   byte-identical under any merge order (the Metrics/Hist merge
   discipline, strengthened to idempotence for cross-run use).

   Merging does not sum counters across entries; [aggregate] does that
   at warm-start time, where conflicting binding signatures for an event
   also surface (such events are dropped from the warm plan — the stale
   path). *)

open Podopt_profile
module Crc32 = Podopt_crypto.Crc32

exception Format_error of string

let format_error fmt = Format.kasprintf (fun s -> raise (Format_error s)) fmt
let version = 2

type entry = {
  id : string;            (* crc32 (hex) of the canonical body below *)
  kind : string;          (* workload kind, e.g. "seccomm" *)
  shard : int;
  dispatched : int;       (* ops the shard served while profiling *)
  trace_entries : int;    (* trace entries folded into the graph *)
  graph : Event_graph.t;
  chains : string list list;            (* hot chains at capture time *)
  handlers : (string * string list) list;
      (* event -> ordered handler names at capture time *)
  depths : (int * int) list;
      (* drained-batch depth -> observation count (may be empty) *)
}

type t = entry list  (* sorted by (id, kind, shard); no duplicate ids *)

let entries (t : t) = t

(* --- canonical rendering ----------------------------------------------- *)

let check_name what name =
  if name = "" then format_error "empty %s name" what;
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' then
        format_error "%s name %S contains whitespace" what name)
    name

(* The canonical body: deterministic line order regardless of hashtable
   iteration or capture order, so equal observations render equal bytes
   (and therefore equal ids). *)
let body_lines (e : entry) : string list =
  check_name "kind" e.kind;
  let header =
    Printf.sprintf "E %s %d %d %d" e.kind e.shard e.dispatched e.trace_entries
  in
  let nodes =
    Event_graph.nodes e.graph
    |> List.sort (fun (a : Event_graph.node) b -> compare a.Event_graph.name b.Event_graph.name)
    |> List.map (fun (n : Event_graph.node) ->
           check_name "event" n.Event_graph.name;
           Printf.sprintf "N %s %d %d %d %d" n.Event_graph.name n.occurrences
             n.raised_sync n.raised_async n.raised_timed)
  in
  let edges =
    Event_graph.edges e.graph
    |> List.sort (fun (a : Event_graph.edge) b ->
           compare (a.Event_graph.src, a.Event_graph.dst) (b.Event_graph.src, b.Event_graph.dst))
    |> List.map (fun (ed : Event_graph.edge) ->
           check_name "event" ed.Event_graph.src;
           check_name "event" ed.Event_graph.dst;
           Printf.sprintf "G %s %s %d %d %d %d" ed.Event_graph.src ed.Event_graph.dst
             ed.weight ed.sync ed.async ed.timed)
  in
  let chains =
    List.sort compare e.chains
    |> List.map (fun chain ->
           if chain = [] then format_error "empty chain";
           List.iter (check_name "event") chain;
           "C " ^ String.concat " " chain)
  in
  let handlers =
    List.sort compare e.handlers
    |> List.map (fun (event, hs) ->
           check_name "event" event;
           List.iter (check_name "handler") hs;
           if hs = [] then Printf.sprintf "H %s" event
           else Printf.sprintf "H %s %s" event (String.concat " " hs))
  in
  let depths =
    List.sort compare e.depths
    |> List.map (fun (d, c) ->
           if d <= 0 || c <= 0 then
             format_error "bad depth observation (%d, %d)" d c;
           Printf.sprintf "D %d %d" d c)
  in
  (header :: nodes) @ edges @ chains @ handlers @ depths

let digest_of_lines lines =
  Printf.sprintf "%08x" (Crc32.of_string (String.concat "\n" lines))

(* Build an entry, computing its content id. *)
let make_entry ?(depths = []) ~kind ~shard ~dispatched ~trace_entries ~graph
    ~chains ~handlers () =
  let e =
    { id = ""; kind; shard; dispatched; trace_entries; graph; chains; handlers;
      depths = List.sort compare depths }
  in
  { e with id = digest_of_lines (body_lines e) }

let compare_entry (a : entry) (b : entry) =
  compare (a.id, a.kind, a.shard) (b.id, b.kind, b.shard)

(* Id-keyed set union.  Entries with equal ids have (modulo CRC
   collision) equal content; keep one. *)
let of_entries es : t =
  let sorted = List.sort_uniq compare_entry es in
  let rec dedup = function
    | a :: (b :: _ as rest) when (a : entry).id = (b : entry).id -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let merge (a : t) (b : t) : t = of_entries (a @ b)
let merge_all (ts : t list) : t = of_entries (List.concat ts)

(* --- encode ------------------------------------------------------------ *)

let to_string (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# podopt profile store\n";
  Buffer.add_string buf (Printf.sprintf "V %d\n" version);
  List.iter
    (fun e ->
      let body = body_lines e in
      (* the id is stored, and re-derived from the body on load *)
      (match body with
       | header :: rest ->
         Buffer.add_string buf (Printf.sprintf "E %s%s\n" e.id
              (String.sub header 1 (String.length header - 1)));
         List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) rest
       | [] -> assert false))
    t;
  Buffer.contents buf

(* --- decode ------------------------------------------------------------ *)

let int_field what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> format_error "bad %s %S" what s

(* Raw parsed entry, before graph reconstruction. *)
type partial = {
  p_id : string;
  p_kind : string;
  p_shard : int;
  p_dispatched : int;
  p_trace : int;
  mutable p_nodes : (string * int * int * int * int) list;
  mutable p_edges : (string * string * int * int * int * int) list;
  mutable p_chains : string list list;
  mutable p_handlers : (string * string list) list;
  mutable p_depths : (int * int) list;
}

let finish (p : partial) : entry =
  let graph = Event_graph.create () in
  List.iter
    (fun (name, occ, s, a, ti) ->
      let n = Event_graph.node graph name in
      n.Event_graph.occurrences <- occ;
      n.raised_sync <- s;
      n.raised_async <- a;
      n.raised_timed <- ti)
    (List.rev p.p_nodes);
  List.iter
    (fun (src, dst, w, s, a, ti) ->
      (* materialize the edge with its stored counters *)
      Event_graph.add_edge graph ~src ~dst Podopt_hir.Ast.Sync;
      match Event_graph.find_edge graph ~src ~dst with
      | None -> assert false
      | Some e ->
        e.Event_graph.weight <- w;
        e.sync <- s;
        e.async <- a;
        e.timed <- ti)
    (List.rev p.p_edges);
  (* add_edge bumped occurrence-less node creation only; restore counters
     happened above, but add_edge also created src/dst nodes with zero
     counters when the N lines were missing — acceptable: the id check
     below rejects any disagreement with the stored content *)
  let e =
    {
      id = p.p_id;
      kind = p.p_kind;
      shard = p.p_shard;
      dispatched = p.p_dispatched;
      trace_entries = p.p_trace;
      graph;
      chains = List.rev p.p_chains;
      handlers = List.rev p.p_handlers;
      depths = List.sort compare p.p_depths;
    }
  in
  let derived = digest_of_lines (body_lines e) in
  if derived <> p.p_id then
    format_error "entry id %s does not match its content (computed %s)" p.p_id derived;
  e

let of_string (s : string) : t =
  let saw_version = ref false in
  let current : partial option ref = ref None in
  let finished = ref [] in
  let close () =
    match !current with
    | Some p ->
      finished := finish p :: !finished;
      current := None
    | None -> ()
  in
  let in_entry what =
    match !current with
    | Some p -> p
    | None -> format_error "%s line outside any entry" what
  in
  let dispatch line =
    let fields = String.split_on_char ' ' line |> List.filter (( <> ) "") in
    match fields with
    | [] -> ()
    | [ "V"; v ] ->
      let v = int_field "version" v in
      (* version 1 is a strict subset (no D lines); still accepted *)
      if v < 1 || v > version then
        format_error "unsupported store version %d (expected 1..%d)" v version;
      saw_version := true
    | [ "E"; id; kind; shard; dispatched; trace ] ->
      if not !saw_version then format_error "E line before V line";
      close ();
      current :=
        Some
          {
            p_id = id;
            p_kind = kind;
            p_shard = int_field "shard" shard;
            p_dispatched = int_field "dispatched" dispatched;
            p_trace = int_field "trace_entries" trace;
            p_nodes = [];
            p_edges = [];
            p_chains = [];
            p_handlers = [];
            p_depths = [];
          }
    | [ "N"; name; occ; sync; async; timed ] ->
      let p = in_entry "N" in
      p.p_nodes <-
        (name, int_field "occurrences" occ, int_field "sync" sync,
         int_field "async" async, int_field "timed" timed)
        :: p.p_nodes
    | [ "G"; src; dst; w; sync; async; timed ] ->
      let p = in_entry "G" in
      p.p_edges <-
        (src, dst, int_field "weight" w, int_field "sync" sync,
         int_field "async" async, int_field "timed" timed)
        :: p.p_edges
    | "C" :: (_ :: _ as events) ->
      let p = in_entry "C" in
      p.p_chains <- events :: p.p_chains
    | "H" :: event :: handlers ->
      let p = in_entry "H" in
      p.p_handlers <- (event, handlers) :: p.p_handlers
    | [ "D"; d; c ] ->
      let p = in_entry "D" in
      p.p_depths <- (int_field "depth" d, int_field "count" c) :: p.p_depths
    | tag :: _ -> format_error "bad record tag %S in line %S" tag line
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then () else dispatch line)
    (String.split_on_char '\n' s);
  if not !saw_version then format_error "missing V line";
  close ();
  of_entries (List.rev !finished)

let save (path : string) (t : t) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load (path : string) : t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

(* --- aggregation (warm-start input) ------------------------------------ *)

type aggregate = {
  agg_graph : Event_graph.t;   (* counter sum of every matching entry *)
  agg_signatures : (string * string list) list;
      (* events whose stored binding signature is consistent *)
  agg_conflicts : string list; (* events with disagreeing signatures *)
  agg_depths : (int * int) list;
      (* depth observations summed across matching entries *)
  agg_entries : int;           (* entries folded in *)
}

(* Sum the graphs of every entry for [kind] and intersect the binding
   signatures: an event whose recorded handler lists disagree across
   entries is a conflict — the warm-start pass treats it as stale. *)
let aggregate ~kind (t : t) : aggregate =
  let matching = List.filter (fun e -> e.kind = kind) t in
  let agg_graph = Event_graph.merge_all (List.map (fun e -> e.graph) matching) in
  let sigs : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let conflicts = ref [] in
  List.iter
    (fun e ->
      List.iter
        (fun (event, hs) ->
          match Hashtbl.find_opt sigs event with
          | None -> Hashtbl.add sigs event hs
          | Some prev when prev = hs -> ()
          | Some _ ->
            if not (List.mem event !conflicts) then conflicts := event :: !conflicts)
        e.handlers)
    matching;
  let conflicts = List.sort compare !conflicts in
  let signatures =
    Hashtbl.fold
      (fun event hs acc ->
        if List.mem event conflicts then acc else (event, hs) :: acc)
      sigs []
    |> List.sort compare
  in
  (* depth evidence is additive: sum the observation counts per depth
     across entries (the same fold a live depth model performs) *)
  let depth_tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun (d, c) ->
          Hashtbl.replace depth_tbl d
            (c + Option.value ~default:0 (Hashtbl.find_opt depth_tbl d)))
        e.depths)
    matching;
  let agg_depths =
    Hashtbl.fold (fun d c acc -> (d, c) :: acc) depth_tbl []
    |> List.sort compare
  in
  {
    agg_graph;
    agg_signatures = signatures;
    agg_conflicts = conflicts;
    agg_depths;
    agg_entries = List.length matching;
  }

(* --- reporting (the [podopt profile show] surface) --------------------- *)

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "entry %s: kind %s, shard %d, dispatched %d, trace %d, %d events, %d edges@."
    e.id e.kind e.shard e.dispatched e.trace_entries
    (Event_graph.node_count e.graph)
    (Event_graph.edge_count e.graph);
  List.iter
    (fun chain -> Fmt.pf ppf "  chain: %s@." (String.concat " -> " chain))
    (List.sort compare e.chains);
  List.iter
    (fun (event, hs) ->
      Fmt.pf ppf "  handlers %s: %s@." event
        (if hs = [] then "(none)" else String.concat ", " hs))
    (List.sort compare e.handlers);
  if e.depths <> [] then
    Fmt.pf ppf "  depths: %s@."
      (String.concat ", "
         (List.map
            (fun (d, c) -> Printf.sprintf "%dx%d" d c)
            (List.sort compare e.depths)))

let pp ppf (t : t) =
  Fmt.pf ppf "profile store: %d entries@." (List.length t);
  List.iter (pp_entry ppf) t
