open Podopt

let v = Helpers.value

let test_marshal_roundtrip () =
  let cases =
    [
      [];
      [ Value.Unit ];
      [ Value.Int 42; Value.Str "hello"; Value.Bool true ];
      [ Value.Int min_int; Value.Int max_int; Value.Int (-1) ];
      [ Value.Float 3.14159; Value.Float (-0.0); Value.Float infinity ];
      [ Value.Bytes (Bytes.of_string "\x00\x01\xff\xfe") ];
      [ Value.Pair (Value.Int 1, Value.Str "x") ];
      [ Value.List [ Value.Int 1; Value.List [ Value.Bool false ]; Value.Unit ] ];
      [ Value.Str "" ];
      [ Value.Str (String.make 1000 'a') ];
    ]
  in
  List.iter
    (fun args ->
      let buf = Value.marshal args in
      let back = Value.unmarshal buf in
      Alcotest.(check (list v)) "roundtrip" args back)
    cases

let test_marshal_rejects_garbage () =
  Alcotest.check_raises "empty" (Value.Unmarshal_error "truncated int") (fun () ->
      ignore (Value.unmarshal ""));
  (* a valid buffer with trailing junk must be rejected *)
  let buf = Value.marshal [ Value.Int 1 ] ^ "x" in
  (try
     ignore (Value.unmarshal buf);
     Alcotest.fail "expected Unmarshal_error"
   with Value.Unmarshal_error _ -> ())

let test_equal () =
  Alcotest.(check bool) "int eq" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "int ne" false (Value.equal (Value.Int 3) (Value.Int 4));
  Alcotest.(check bool) "cross-type" false (Value.equal (Value.Int 0) (Value.Bool false));
  Alcotest.(check bool) "nan eq" true
    (Value.equal (Value.Float Float.nan) (Value.Float Float.nan));
  Alcotest.(check bool) "list prefix" false
    (Value.equal (Value.List [ Value.Int 1 ]) (Value.List [ Value.Int 1; Value.Int 2 ]))

let test_truthy () =
  Alcotest.(check bool) "true" true (Value.truthy (Value.Bool true));
  Alcotest.(check bool) "nonzero" true (Value.truthy (Value.Int 7));
  Alcotest.(check bool) "zero" false (Value.truthy (Value.Int 0));
  Alcotest.(check bool) "unit" false (Value.truthy Value.Unit);
  Alcotest.check_raises "string not condition"
    (Value.Type_error "expected condition, got \"x\"") (fun () ->
      ignore (Value.truthy (Value.Str "x")))

let test_accessors () =
  Alcotest.(check int) "as_int" 5 (Value.as_int (Value.Int 5));
  Alcotest.(check (float 0.0)) "as_float of int" 5.0 (Value.as_float (Value.Int 5));
  Alcotest.(check string) "as_str" "s" (Value.as_str (Value.Str "s"));
  (try
     ignore (Value.as_int (Value.Str "s"));
     Alcotest.fail "expected Type_error"
   with Value.Type_error _ -> ())

let test_marshal_size_grows_with_payload () =
  let small = Value.marshal [ Value.Bytes (Bytes.create 16) ] in
  let big = Value.marshal [ Value.Bytes (Bytes.create 1024) ] in
  Alcotest.(check bool) "bigger payload, bigger buffer" true
    (String.length big > String.length small + 1000)

let suite =
  [
    Alcotest.test_case "marshal roundtrip" `Quick test_marshal_roundtrip;
    Alcotest.test_case "marshal rejects garbage" `Quick test_marshal_rejects_garbage;
    Alcotest.test_case "equality" `Quick test_equal;
    Alcotest.test_case "truthiness" `Quick test_truthy;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "marshal size scales" `Quick test_marshal_size_grows_with_payload;
  ]
