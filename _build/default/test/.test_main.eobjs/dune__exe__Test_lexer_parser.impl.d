test/test_lexer_parser.ml: Alcotest Ast Helpers List Parse Podopt Pp QCheck2 QCheck_alcotest String Value
