lib/profile/event_graph.mli: Ast Format Hashtbl Podopt_eventsys Podopt_hir
