(* The stacked service: SecComm over CTP over a lossy link, end to end,
   with and without optimization and with fragment loss. *)

open Podopt
module Stack = Podopt_apps.Secure_transport

let payload i = Bytes.init (300 + (i * 131 mod 900)) (fun j -> Char.chr ((i + j) land 0xff))

let test_lossless_delivery () =
  let t = Stack.create ~loss_permille:0 () in
  for i = 1 to 10 do
    Stack.send t (payload i)
  done;
  Stack.settle t;
  let got = Stack.delivered t in
  Alcotest.(check int) "all delivered" 10 (List.length got);
  List.iteri
    (fun idx m ->
      Alcotest.(check string)
        (Printf.sprintf "message %d intact" (idx + 1))
        (Bytes.to_string (payload (idx + 1)))
        (Bytes.to_string m))
    got;
  Alcotest.(check int) "no mac failures" 0 (Stack.mac_failures t)

let test_lossy_delivery_never_corrupts () =
  let t = Stack.create ~loss_permille:60 ~seed:5L () in
  let n = 40 in
  for i = 1 to n do
    Stack.send t (payload i)
  done;
  Stack.settle t;
  let got = Stack.delivered t in
  let stats = Stack.link_stats t in
  Alcotest.(check bool) "some loss happened" true (stats.Podopt_net.Link.dropped > 0);
  Alcotest.(check bool) "some messages made it" true (List.length got > 0);
  Alcotest.(check bool) "loss visible end-to-end" true (List.length got < n);
  (* the crucial property: every delivered plaintext is byte-identical to
     some sent payload — corruption never escapes the MAC *)
  let sent = List.init n (fun i -> Bytes.to_string (payload (i + 1))) in
  List.iter
    (fun m ->
      Alcotest.(check bool) "delivered message was sent" true
        (List.mem (Bytes.to_string m) sent))
    got

let test_optimized_stack_equivalent () =
  (* loss-free links so the optimizer's profiling traffic cannot shift
     the loss pattern between the two stacks *)
  let t1 = Stack.create ~loss_permille:0 () in
  let t2 = Stack.create ~loss_permille:0 () in
  Stack.optimize t2;
  let t2_pre = List.length (Stack.delivered t2) in
  for i = 1 to 8 do
    Stack.send t1 (payload i);
    Stack.send t2 (payload i)
  done;
  Stack.settle t1;
  Stack.settle t2;
  let d1 = Stack.delivered t1 in
  let d2_all = Stack.delivered t2 in
  (* drop the optimizer's profiling traffic from the optimized side *)
  let d2 = List.filteri (fun i _ -> i >= t2_pre) d2_all in
  Alcotest.(check int) "same count" (List.length d1) (List.length d2);
  List.iter2
    (fun a b -> Alcotest.(check string) "same plaintext" (Bytes.to_string a) (Bytes.to_string b))
    d1 d2;
  (* and the optimized sender actually uses its super-handlers *)
  Alcotest.(check bool) "optimized dispatches happened" true
    (t2.Stack.sender.Runtime.stats.Runtime.optimized_dispatches > 0)

let test_reassembly_abort_recovers () =
  (* drop exactly the last fragment of one message by using a seed that
     loses packets; the next message must still deliver cleanly *)
  let t = Stack.create ~loss_permille:150 ~seed:21L () in
  for i = 1 to 25 do
    Stack.send t (payload i)
  done;
  Stack.settle t;
  let aborted =
    match Runtime.get_global t.Stack.receiver "rasm_aborted" with
    | Value.Int n -> n
    | _ -> 0
  in
  let delivered = List.length (Stack.delivered t) in
  let failures = Stack.mac_failures t in
  Alcotest.(check bool)
    (Printf.sprintf "deliveries (%d) + failures (%d) + aborts (%d) cover losses"
       delivered failures aborted)
    true
    (delivered > 0 && delivered + failures + aborted >= 20)

let suite =
  [
    Alcotest.test_case "lossless delivery" `Quick test_lossless_delivery;
    Alcotest.test_case "lossy never corrupts" `Quick test_lossy_delivery_never_corrupts;
    Alcotest.test_case "optimized stack equivalent" `Quick test_optimized_stack_equivalent;
    Alcotest.test_case "reassembly abort recovers" `Quick test_reassembly_abort_recovers;
  ]
