lib/eventsys/vclock.ml:
