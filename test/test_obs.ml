(* lib/obs tests: log-bucketed histogram boundaries and percentile
   semantics, the metrics registry's per-kind merge rules, qcheck
   properties that merge is associative/commutative/order-independent,
   and the end-to-end determinism surface: serve's JSON document
   (schema v3, latency histograms included) must be byte-identical at
   --domains 1 and --domains 4. *)

module Hist = Podopt_obs.Hist
module Metrics = Podopt_obs.Metrics
module B = Podopt_broker

(* --- histogram: buckets ------------------------------------------------- *)

let test_bucket_boundaries () =
  let check_bucket v b =
    Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (Hist.bucket_of v)
  in
  (* bucket 0 = {0}; bucket i >= 1 = [2^(i-1) .. 2^i - 1] *)
  check_bucket 0 0;
  check_bucket (-5) 0;            (* negatives clamp to 0 *)
  check_bucket 1 1;
  check_bucket 2 2;
  check_bucket 3 2;
  check_bucket 4 3;
  check_bucket 7 3;
  check_bucket 8 4;
  check_bucket 1023 10;
  check_bucket 1024 11;
  check_bucket max_int (Hist.buckets - 1);  (* clamped to the top bucket *)
  let check_ub b v =
    Alcotest.(check int) (Printf.sprintf "upper_bound %d" b) v
      (Hist.upper_bound b)
  in
  check_ub 0 0;
  check_ub 1 1;
  check_ub 2 3;
  check_ub 3 7;
  check_ub 10 1023;
  (* every representable value lands in the bucket whose range holds it *)
  List.iter
    (fun v ->
      let b = Hist.bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "%d within bucket %d bounds" v b)
        true
        (v <= Hist.upper_bound b && (b = 0 || v > Hist.upper_bound (b - 1))))
    [ 0; 1; 2; 3; 5; 17; 100; 4096; 1_000_000 ]

let test_observe_accounting () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  List.iter (Hist.observe h) [ 0; 1; 5; 5; 1000; -3 ];
  Alcotest.(check int) "count" 6 (Hist.count h);
  (* -3 clamps to 0, so the sum sees it as 0 *)
  Alcotest.(check int) "sum" 1011 (Hist.sum h);
  Alcotest.(check int) "max" 1000 (Hist.max_value h);
  Alcotest.(check int) "mean rounds down" 168 (Hist.mean h);
  Alcotest.(check int) "bucket 0 holds the two zeros" 2 (Hist.bucket_count h 0);
  Alcotest.(check int) "bucket 3 holds both fives" 2 (Hist.bucket_count h 3);
  Alcotest.(check (list (pair int int)))
    "nonzero buckets ascending"
    [ (0, 2); (1, 1); (3, 2); (10, 1) ]
    (Hist.nonzero h)

(* --- histogram: percentiles --------------------------------------------- *)

let test_percentile_semantics () =
  let h = Hist.create () in
  Alcotest.(check int) "empty percentile is 0" 0 (Hist.percentile h 99);
  Hist.observe h 5;
  (* a single observation answers every percentile, clamped to the
     observed max (5), not bucket 3's upper bound (7) *)
  Alcotest.(check int) "p0 of singleton" 5 (Hist.percentile h 0);
  Alcotest.(check int) "p50 of singleton" 5 (Hist.percentile h 50);
  Alcotest.(check int) "p100 of singleton" 5 (Hist.percentile h 100);
  let h2 = Hist.create () in
  for _ = 1 to 9 do Hist.observe h2 1 done;
  Hist.observe h2 1000;
  (* rank ceil(50*10/100) = 5 -> the ones; rank 10 -> the outlier,
     reported as min(bucket upper bound 1023, observed max 1000) *)
  Alcotest.(check int) "p50 in the ones" 1 (Hist.percentile h2 50);
  Alcotest.(check int) "p99 clamps to observed max" 1000
    (Hist.percentile h2 99);
  let d = Hist.dist h2 in
  Alcotest.(check int) "dist.p50" 1 d.Hist.p50;
  Alcotest.(check int) "dist.max" 1000 d.Hist.max;
  Alcotest.check_raises "percentile 101 rejected"
    (Invalid_argument "Hist.percentile: p out of 0..100") (fun () ->
      ignore (Hist.percentile h2 101))

let test_merge_unit () =
  let a = Hist.create () and b = Hist.create () and all = Hist.create () in
  List.iter (Hist.observe a) [ 1; 5; 9 ];
  List.iter (Hist.observe b) [ 0; 1000 ];
  List.iter (Hist.observe all) [ 1; 5; 9; 0; 1000 ];
  let m = Hist.merge a b in
  Alcotest.(check bool) "merge = feeding all observations" true
    (Hist.equal m all);
  Alcotest.(check int) "merge count" 5 (Hist.count m);
  Alcotest.(check int) "merge max" 1000 (Hist.max_value m);
  Alcotest.(check int) "left argument untouched" 3 (Hist.count a);
  let dst = Hist.copy a in
  Hist.merge_into ~dst b;
  Alcotest.(check bool) "merge_into matches merge" true (Hist.equal dst m);
  Hist.reset dst;
  Alcotest.(check int) "reset empties" 0 (Hist.count dst);
  Alcotest.(check int) "reset clears max" 0 (Hist.max_value dst)

(* --- metrics registry --------------------------------------------------- *)

let test_registry_basics () =
  let m = Metrics.create () in
  Metrics.add m "ops" 3;
  Metrics.add m "ops" 2;
  Metrics.set_gauge m "depth" 7;
  Metrics.observe m "wait" 5;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter m "ops");
  Alcotest.(check int) "gauge reads back" 7 (Metrics.gauge m "depth");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter m "nope");
  Alcotest.(check int) "histogram handle is live" 1
    (Hist.count (Metrics.histogram m "wait"));
  Alcotest.(check (list string))
    "to_list sorted by name"
    [ "depth"; "ops"; "wait" ]
    (List.map fst (Metrics.to_list m));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: ops already exists with another kind")
    (fun () -> Metrics.observe m "ops" 1)

let test_registry_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a "ops" 3;
  Metrics.add b "ops" 4;
  Metrics.set_gauge a "depth" 9;
  Metrics.set_gauge b "depth" 2;
  Metrics.observe a "wait" 1;
  Metrics.observe b "wait" 1000;
  Metrics.add b "only_b" 1;
  let m = Metrics.merge a b in
  Alcotest.(check int) "counters add" 7 (Metrics.counter m "ops");
  Alcotest.(check int) "gauges take the max" 9 (Metrics.gauge m "depth");
  Alcotest.(check int) "one-sided counter survives" 1
    (Metrics.counter m "only_b");
  Alcotest.(check int) "histograms merge" 2
    (Hist.count (Metrics.histogram m "wait"));
  Alcotest.(check int) "merged hist max" 1000
    (Hist.max_value (Metrics.histogram m "wait"));
  Alcotest.(check int) "arguments untouched" 3 (Metrics.counter a "ops");
  Metrics.reset m;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter m "ops");
  Alcotest.(check (list string))
    "names survive reset"
    [ "depth"; "only_b"; "ops"; "wait" ]
    (List.map fst (Metrics.to_list m))

(* --- qcheck: merge is associative, commutative, order-independent ------- *)

let hist_of xs =
  let h = Hist.create () in
  List.iter (Hist.observe h) xs;
  h

let obs_gen = QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 100_000))

let prop_merge_assoc_comm =
  QCheck2.Test.make ~name:"hist merge is associative and commutative"
    ~count:100
    ~print:(fun (a, b, c) ->
      Printf.sprintf "a=%d obs, b=%d obs, c=%d obs" (List.length a)
        (List.length b) (List.length c))
    QCheck2.Gen.(tup3 obs_gen obs_gen obs_gen)
    (fun (xa, xb, xc) ->
      let a = hist_of xa and b = hist_of xb and c = hist_of xc in
      Hist.equal (Hist.merge a (Hist.merge b c)) (Hist.merge (Hist.merge a b) c)
      && Hist.equal (Hist.merge a b) (Hist.merge b a))

let prop_order_independent =
  QCheck2.Test.make
    ~name:"hist is independent of observation order" ~count:100
    ~print:(fun xs -> Printf.sprintf "%d obs" (List.length xs))
    obs_gen
    (fun xs ->
      Hist.equal (hist_of xs) (hist_of (List.rev xs))
      && Hist.equal (hist_of xs) (hist_of (List.sort compare xs)))

(* --- serve JSON: byte-identical across domain counts -------------------- *)

let test_json_identical_across_domains () =
  let doc ~domains =
    let cfg =
      { B.Broker.default_config with shards = 4; seed = 11L; domains }
    in
    let broker = B.Broker.create cfg in
    Fun.protect
      ~finally:(fun () -> B.Broker.shutdown broker)
      (fun () ->
        let profile =
          {
            B.Loadgen.default_profile with
            B.Loadgen.sessions = 10;
            ops = 8;
            interval = 120;
            spread = 31;
          }
        in
        let s = B.Loadgen.steady ~warmup_ops:6 broker profile in
        B.Report.json ~metrics:true broker s)
  in
  let seq = doc ~domains:1 in
  Alcotest.(check bool) "schema v8" true
    (Astring_contains.contains seq "\"schema\": \"podopt/serve/v8\"");
  Alcotest.(check bool) "latency percentiles present" true
    (Astring_contains.contains seq "\"queue_wait\"");
  Alcotest.(check string) "JSON byte-identical at --domains 4" seq
    (doc ~domains:4)

let suite =
  [
    Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "observe accounting" `Quick test_observe_accounting;
    Alcotest.test_case "percentile semantics" `Quick test_percentile_semantics;
    Alcotest.test_case "merge combines exactly" `Quick test_merge_unit;
    Alcotest.test_case "registry basics" `Quick test_registry_basics;
    Alcotest.test_case "registry merge rules" `Quick test_registry_merge;
    Alcotest.test_case "serve JSON identical across domains" `Quick
      test_json_identical_across_domains;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_merge_assoc_comm; prop_order_independent ]
