lib/profile/dot.ml: Buffer Event_graph List Printf String
