lib/eventsys/runtime.ml: Ast Compile Costs Equeue Event Fmt Handler Hashtbl Interp List Option Podopt_hir Prim Registry String Trace Value Vclock
