test/test_runtime.ml: Alcotest Ast Bytes Handler List Parse Podopt Runtime Trace Value
