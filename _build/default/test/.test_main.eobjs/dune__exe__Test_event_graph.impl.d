test/test_event_graph.ml: Alcotest Ast Chains Event_graph Hashtbl List Paths Podopt Reduce
