examples/video_player_demo.ml: Chains Dot Driver Event_graph Fmt List Podopt Podopt_apps Reduce Report Runtime String Trace
