lib/profile/subsume.mli: Podopt_eventsys Trace
