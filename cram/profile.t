The persistent profile store: `serve --profile-out` writes every
shard's accumulated adaptive state; stores merge as a set union that is
byte-identical under any argument order; `serve --profile-in`
warm-starts the broker from the merged profile before the first packet.

  $ ../bin/podopt_cli.exe serve seccomm --profile-out p1.pprof > /dev/null
  $ ../bin/podopt_cli.exe serve seccomm --seed 7 --profile-out p2.pprof > /dev/null

Merging is order-independent (the two runs here observed identical
per-shard profiles, so the union also deduplicates to 2 entries):

  $ ../bin/podopt_cli.exe profile merge ab.pprof p1.pprof p2.pprof
  merged 2 profiles -> ab.pprof (2 entries)
  $ ../bin/podopt_cli.exe profile merge ba.pprof p2.pprof p1.pprof
  merged 2 profiles -> ba.pprof (2 entries)
  $ cmp ab.pprof ba.pprof

  $ ../bin/podopt_cli.exe profile show ab.pprof
  profile store: 2 entries
  entry 6727885f: kind seccomm, shard 0, dispatched 32, trace 220, 4 events, 6 edges
    handlers SecDeliver: deliver_up
    handlers SecNetOut: net_out
    handlers SecPop: coord_pop, xor_pop, des_pop, out_pop
    handlers SecPush: coord_push, des_push, xor_push, out_push
    depths: 1x80
  entry 89841d9b: kind seccomm, shard 1, dispatched 32, trace 220, 4 events, 6 edges
    handlers SecDeliver: deliver_up
    handlers SecNetOut: net_out
    handlers SecPop: coord_pop, xor_pop, des_pop, out_pop
    handlers SecPush: coord_push, des_push, xor_push, out_push
    depths: 1x80

A warm-started serve (no warm-up phase) compiles super-handlers before
the first packet, so its very first batch dispatches optimized where a
cold broker's is all generic:

  $ ../bin/podopt_cli.exe serve seccomm --profile-in ab.pprof --warmup 0 | grep 'warm start'
  warm start: 4 super-handlers installed before the first packet (0 stale events dropped)

  $ ../bin/podopt_cli.exe serve seccomm --profile-in ab.pprof --warmup 0 --json | grep -o '"first_epoch_optimized": [0-9]*'
  "first_epoch_optimized": 4

  $ ../bin/podopt_cli.exe serve seccomm --warmup 0 --json | grep -o '"first_epoch_optimized": [0-9]*'
  "first_epoch_optimized": 0

A corrupt profile is an input error, not a crash:

  $ echo garbage > bad.pprof
  $ ../bin/podopt_cli.exe serve seccomm --profile-in bad.pprof
  podopt: bad profile bad.pprof: bad record tag "garbage" in line "garbage"
  [1]
