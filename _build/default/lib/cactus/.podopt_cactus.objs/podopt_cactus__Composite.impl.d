lib/cactus/composite.ml: Fmt Hashtbl List Micro_protocol Podopt_eventsys Podopt_hir Runtime
