(* Property-based tests (qcheck):

   1. HIR semantics preservation: for random well-formed programs,
      [optimize p] and [compile p] behave exactly like [interp p].
   2. Event-graph invariants of the GraphBuilder algorithm.
   3. End-to-end: for random event configurations, the optimized runtime
      is observationally equivalent to the generic one, including under
      rebinding. *)

open Podopt

(* --- random HIR programs ---------------------------------------------- *)

let int_vars = [ "v0"; "v1"; "v2"; "v3" ]
let globals = [ "g0"; "g1" ]

let gen_int_expr : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Ast.Lit (Value.Int i)) (int_range (-20) 20);
                map (fun v -> Ast.Var v) (oneofl int_vars);
                map (fun g -> Ast.Global g) (oneofl globals);
                map (fun i -> Ast.Arg i) (int_range 0 1);
              ]
          else
            oneof
              [
                map (fun i -> Ast.Lit (Value.Int i)) (int_range (-20) 20);
                map2
                  (fun op (a, b) -> Ast.Binop (op, a, b))
                  (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
                  (pair (self (n / 2)) (self (n / 2)));
                map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1));
                map2
                  (fun f a -> Ast.Call (f, [ a ]))
                  (oneofl [ "abs" ])
                  (self (n - 1));
                map2
                  (fun f (a, b) -> Ast.Call (f, [ a; b ]))
                  (oneofl [ "min"; "max" ])
                  (pair (self (n / 2)) (self (n / 2)));
              ])
        (min n 6))

let gen_cond : Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  map2
    (fun op (a, b) -> Ast.Binop (op, a, b))
    (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ])
    (pair gen_int_expr gen_int_expr)

let counter = ref 0

let gen_block : Ast.block QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_stmt self depth =
    let leaf =
      [
        map2 (fun v e -> Ast.Let (v, e)) (oneofl int_vars) gen_int_expr;
        map2 (fun v e -> Ast.Assign (v, e)) (oneofl int_vars) gen_int_expr;
        map2 (fun g e -> Ast.Set_global (g, e)) (oneofl globals) gen_int_expr;
        map (fun e -> Ast.Emit ("out", [ e ])) gen_int_expr;
        return (Ast.Return None);
      ]
    in
    if depth <= 0 then oneof leaf
    else
      oneof
        (leaf
        @ [
            map3 (fun c t e -> Ast.If (c, t, e)) gen_cond (self (depth - 1))
              (self (depth - 1));
            map
              (fun body ->
                incr counter;
                let c = Printf.sprintf "wc%d" !counter in
                (* a bounded loop whose counter is private to the loop *)
                Ast.If
                  ( Ast.Lit (Value.Bool true),
                    [
                      Ast.Let (c, Ast.Lit (Value.Int 0));
                      Ast.While
                        ( Ast.Binop (Ast.Lt, Ast.Var c, Ast.Lit (Value.Int 4)),
                          body @ [ Ast.Assign (c, Ast.Binop (Ast.Add, Ast.Var c, Ast.Lit (Value.Int 1))) ] );
                    ],
                    [] ))
              (self (depth - 1));
          ])
  in
  let rec block depth =
    let open QCheck2.Gen in
    list_size (int_range 1 5) (gen_stmt block depth)
  in
  block 2

(* initialize every variable and global before the random body runs *)
let wrap_body (body : Ast.block) : Ast.proc =
  let inits =
    List.map (fun v -> Ast.Let (v, Ast.Lit (Value.Int 1))) int_vars
    @ List.map (fun g -> Ast.Set_global (g, Ast.Lit (Value.Int 2))) globals
  in
  { Ast.name = "p"; params = []; body = inits @ body }

let print_block b = Pp.proc_to_string (wrap_body b)

let observe_proc prog name args =
  try Ok (Helpers.observe prog name args) with e -> Error (Printexc.to_string e)

let behaviours_agree p1 n1 p2 n2 args =
  match observe_proc p1 n1 args, observe_proc p2 n2 args with
  | Ok a, Ok b -> a = b
  | Error _, Error _ -> true (* both fail the same way is acceptable *)
  | Ok _, Error e -> QCheck2.Test.fail_reportf "only transformed failed: %s" e
  | Error e, Ok _ -> QCheck2.Test.fail_reportf "only original failed: %s" e

let args = [ Value.Int 3; Value.Int (-1) ]

let prop_optimize_preserves =
  QCheck2.Test.make ~name:"optimize preserves semantics" ~count:300
    ~print:print_block gen_block (fun body ->
      let p = wrap_body body in
      let p' = { (Pipeline.optimize_proc [ p ] p) with Ast.name = "q" } in
      behaviours_agree [ p ] "p" [ p' ] "q" args)

let prop_compile_agrees_with_interp =
  QCheck2.Test.make ~name:"compile agrees with interp" ~count:300
    ~print:print_block gen_block (fun body ->
      let p = wrap_body body in
      let interp_result = observe_proc [ p ] "p" args in
      let compiled_result =
        try Ok (Helpers.observe_compiled [ p ] "p" args)
        with e -> Error (Printexc.to_string e)
      in
      match interp_result, compiled_result with
      | Ok a, Ok b -> a = b
      | Error _, Error _ -> true
      | Ok _, Error e -> QCheck2.Test.fail_reportf "only compiled failed: %s" e
      | Error e, Ok _ -> QCheck2.Test.fail_reportf "only interp failed: %s" e)

let prop_dce_never_grows =
  QCheck2.Test.make ~name:"dce never grows code" ~count:300 ~print:print_block
    gen_block (fun body ->
      let p = wrap_body body in
      let b' = Opt_dce.pass [ p ] p.Ast.body in
      Analysis.block_size b' <= Analysis.block_size p.Ast.body)

let prop_deret_removes_all_returns =
  QCheck2.Test.make ~name:"deret removes all returns" ~count:300 ~print:print_block
    gen_block (fun body ->
      not (Rewrite.contains_return (Deret.remove_returns body)))

(* --- event graph invariants ------------------------------------------- *)

let gen_event_seq : (string * Ast.mode) list QCheck2.Gen.t =
  let open QCheck2.Gen in
  list_size (int_range 2 60)
    (pair
       (map (fun i -> Printf.sprintf "E%d" i) (int_range 0 5))
       (oneofl [ Ast.Sync; Ast.Async; Ast.Timed 5 ]))

let print_seq s = String.concat " " (List.map fst s)

let prop_graph_total_weight =
  QCheck2.Test.make ~name:"graph total weight = n-1" ~count:500 ~print:print_seq
    gen_event_seq (fun seq ->
      Event_graph.total_weight (Event_graph.build seq) = List.length seq - 1)

let prop_reduce_only_drops =
  QCheck2.Test.make ~name:"reduction keeps only edges >= W" ~count:500
    ~print:print_seq gen_event_seq (fun seq ->
      let g = Event_graph.build seq in
      let r = Reduce.reduce g ~threshold:3 in
      List.for_all (fun (e : Event_graph.edge) -> e.Event_graph.weight >= 3)
        (Event_graph.edges r)
      && List.for_all
           (fun (e : Event_graph.edge) ->
             match Event_graph.find_edge g ~src:e.Event_graph.src ~dst:e.Event_graph.dst with
             | Some orig -> orig.Event_graph.weight = e.Event_graph.weight
             | None -> false)
           (Event_graph.edges r))

let prop_chains_are_chains =
  QCheck2.Test.make ~name:"found chains satisfy chain predicate" ~count:500
    ~print:print_seq gen_event_seq (fun seq ->
      let g = Event_graph.build seq in
      List.for_all (Chains.is_chain g) (Chains.find g))

(* --- end-to-end runtime equivalence ----------------------------------- *)

(* A random configuration: 4 events E0..E3; each event gets 1-3 handlers;
   each handler does arithmetic, emits, updates a global, and may raise a
   higher-numbered event (sync or async). *)
type config = {
  handler_specs : (int * int * bool * int option) list list;
      (* per event: (seed, arith, raises_sync?, target) *)
  raises : (int * int) list;  (* workload: (event, arg) *)
  rebind_at : int option;
}

let gen_config : config QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_handler ev =
    map3
      (fun seed arith target ->
        let target =
          match target with
          | Some t when t > ev && t <= 3 -> Some t
          | _ -> None
        in
        (seed, arith, true, target))
      (int_range 0 9) (int_range 1 5)
      (opt (int_range 0 3))
  in
  let gen_handlers ev = list_size (int_range 1 3) (gen_handler ev) in
  map3
    (fun specs raises rebind_at ->
      { handler_specs = specs; raises; rebind_at })
    (flatten_l [ gen_handlers 0; gen_handlers 1; gen_handlers 2; gen_handlers 3 ])
    (list_size (int_range 1 25) (pair (int_range 0 3) (int_range (-10) 10)))
    (opt (int_range 0 20))

let print_config c =
  Printf.sprintf "events=%d raises=%d rebind=%s"
    (List.length c.handler_specs) (List.length c.raises)
    (match c.rebind_at with None -> "no" | Some i -> string_of_int i)

let build_runtime (c : config) : Runtime.t * (unit -> unit) list =
  let buf = Buffer.create 256 in
  let handler_names = ref [] in
  List.iteri
    (fun ev specs ->
      List.iteri
        (fun i (seed, arith, sync, target) ->
          let name = Printf.sprintf "h_%d_%d" ev i in
          handler_names := ((ev, i), name) :: !handler_names;
          let raise_stmt =
            match target with
            | Some t ->
              Printf.sprintf "raise %s E%d(x + %d);"
                (if sync then "sync" else "async")
                t seed
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf
               "handler %s(x) { let a = x * %d + %d; global sum = global sum + a; emit(\"%s\", a); %s }\n"
               name arith seed name raise_stmt))
        specs)
    c.handler_specs;
  let rt = Runtime.create ~program:(Parse.program (Buffer.contents buf)) () in
  Runtime.set_global rt "sum" (Value.Int 0);
  List.iteri
    (fun ev specs ->
      List.iteri
        (fun i _ ->
          Runtime.bind rt ~event:(Printf.sprintf "E%d" ev)
            (Handler.hir' (Printf.sprintf "h_%d_%d" ev i)))
        specs)
    c.handler_specs;
  let steps =
    List.mapi
      (fun step (ev, arg) () ->
        (match c.rebind_at with
         | Some r when r = step ->
           (* rebind mid-workload: unbind one handler of E1 if present *)
           ignore (Runtime.unbind rt ~event:"E1" ~handler:"h_1_0")
         | _ -> ());
        Runtime.raise_sync rt (Printf.sprintf "E%d" ev) [ Value.Int arg ];
        Runtime.run rt)
      c.raises
  in
  (rt, steps)

let run_config (c : config) ~strategy : (string * Value.t list) list * Value.t =
  let rt, steps = build_runtime c in
  (match strategy with
   | None -> ()
   | Some strategy ->
     let plan =
       {
         Plan.empty with
         Plan.actions =
           [ Plan.Merge_chain { events = [ "E0"; "E1"; "E2"; "E3" ]; strategy } ];
       }
     in
     ignore (Driver.apply rt plan));
  List.iter (fun step -> step ()) steps;
  (Runtime.emits rt, Runtime.get_global rt "sum")

let equivalence_prop name strategy =
  QCheck2.Test.make ~name ~count:120 ~print:print_config gen_config (fun c ->
      let e1, s1 = run_config c ~strategy:None in
      let e2, s2 = run_config c ~strategy:(Some strategy) in
      if e1 <> e2 then QCheck2.Test.fail_reportf "emit logs differ"
      else if not (Value.equal s1 s2) then
        QCheck2.Test.fail_reportf "global sums differ: %s vs %s" (Value.to_string s1)
          (Value.to_string s2)
      else true)

let prop_runtime_equivalence =
  equivalence_prop "optimized runtime equivalent (monolithic, incl. rebinding)"
    Plan.Monolithic

let prop_runtime_equivalence_partitioned =
  equivalence_prop "optimized runtime equivalent (partitioned, incl. rebinding)"
    Plan.Partitioned

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_optimize_preserves;
      prop_compile_agrees_with_interp;
      prop_dce_never_grows;
      prop_deret_removes_all_returns;
      prop_graph_total_weight;
      prop_reduce_only_drops;
      prop_chains_are_chains;
      prop_runtime_equivalence;
      prop_runtime_equivalence_partitioned;
    ]
