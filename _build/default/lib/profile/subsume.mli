(** Subsumption-candidate detection (Sec. 3.2.1, Fig. 8): nested
    synchronous raises — event B raised synchronously from within a
    handler of event A — found from the begin/end nesting of a
    handler-instrumented trace.  The optimizer then verifies each raise
    site syntactically before transforming, so profile noise can only
    cost opportunity, never correctness. *)

open Podopt_eventsys

type candidate = {
  parent_event : string;
  parent_handler : string;
  child_event : string;
  occurrences : int;         (** nested raises observed *)
  parent_invocations : int;  (** parent handler runs observed *)
}

(** The nested raise happened on every invocation of the parent. *)
val always : candidate -> bool

val find : Trace.t -> candidate list
