(* Abstract syntax of HIR, the small imperative language in which event
   handlers are written.

   Handlers in the reproduced systems (CTP, SecComm, the X toolkit) are HIR
   procedures; the optimizer merges, inlines and transforms these bodies,
   which is what makes the paper's "compiler optimizations on super-handler
   code" (Sec. 3.2.2) real transformations rather than annotations. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Concat

type unop = Neg | Not

(* How an event is (re-)raised from handler code; mirrors the activation
   kinds of Sec. 2.2.  [Timed d] raises after a delay of [d] virtual time
   units. *)
type mode = Sync | Async | Timed of int

type expr =
  | Lit of Value.t
  | Var of string
  | Global of string
  | Arg of int                    (* positional event argument *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list    (* primitive or user procedure *)

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | Set_global of string * expr
  | If of expr * block * block
  | While of expr * block
  | Expr of expr
  | Raise of { event : string; mode : mode; args : expr list }
  | Emit of string * expr list    (* observable output; the semantics tests
                                     compare emit logs across program
                                     transformations *)
  | Return of expr option

and block = stmt list

type proc = {
  name : string;
  params : string list;
  body : block;
}

type program = proc list

let proc_by_name (p : program) name = List.find_opt (fun pr -> pr.name = name) p

(* Structural equality; [Value.t] contains no functions so polymorphic
   equality is sound. *)
let equal_expr (a : expr) (b : expr) = a = b
let equal_block (a : block) (b : block) = a = b

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||" | Concat -> "++"

let unop_to_string = function Neg -> "-" | Not -> "!"

let mode_to_string = function
  | Sync -> "sync"
  | Async -> "async"
  | Timed d -> Printf.sprintf "after %d" d
