lib/hir/fresh.mli:
