(** Fresh-name generation for alpha-renaming during merging and
    inlining. *)

(** Reset the counter (tests only; generated names are unique within a
    process run regardless). *)
val reset : unit -> unit

(** [var prefix] is a fresh identifier starting with [prefix]. *)
val var : string -> string
