lib/profile/dot.mli: Chains Event_graph
