(** X client scenarios (Sec. 4.3, Fig. 13): an xterm-like terminal with a
    Ctrl+Button popup menu and a gvim-like editor with a scrollbar, in
    one client so a single optimization pass covers both. *)

open Podopt_xwin

type t = {
  client : Client.t;
  term : Widget.t;
  editor : Widget.t;
  menu : Widget.t;
  scrollbar : Widget.t;
  textview : Widget.t;
}

(** Action sequences of the scenarios (= their runtime events). *)
val popup_actions : string list

val scroll_actions : string list
val keystroke_actions : string list

val create : ?costs:Podopt_eventsys.Costs.model -> unit -> t

(** One Ctrl+Button1 press in the terminal. *)
val popup_once : t -> at:int * int -> unit

(** One pointer motion over the scrollbar at height [y]. *)
val scroll_once : t -> y:int -> unit

(** One key press routed to the focused text view. *)
val keystroke_once : t -> key:int -> unit

val type_text : t -> string -> unit

(** A mixed interaction session (the profiling workload). *)
val profile_workload : t -> unit -> unit

(** Mean response time over [n] raises (the paper uses 250). *)
val measure_popup : t -> n:int -> float

val measure_scroll : t -> n:int -> float
val measure_keystroke : t -> n:int -> float
val runtime : t -> Podopt_eventsys.Runtime.t
