lib/eventsys/handler.mli: Format Interp Podopt_hir Value
