lib/hir/ast.mli: Value
