lib/hir/opt_cse.ml: Analysis Ast List
