lib/apps/secure_messenger.ml: Array Bytes Char Podopt_eventsys Podopt_hir Podopt_seccomm Runtime
