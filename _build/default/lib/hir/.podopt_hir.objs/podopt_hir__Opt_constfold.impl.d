lib/hir/opt_constfold.ml: Analysis Ast Interp List Prim Rewrite Value
