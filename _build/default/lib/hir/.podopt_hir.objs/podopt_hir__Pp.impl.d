lib/hir/pp.ml: Ast Fmt Value
