lib/xwin/xprims.mli:
