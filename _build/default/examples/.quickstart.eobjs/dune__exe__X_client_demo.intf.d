examples/x_client_demo.mli:
