(** Podopt: profile-directed optimization of event-based programs
    (PLDI 2002 reproduction).

    The facade re-exports the library's layers under short names and
    provides the one-call workflow:

    {[
      let rt = Podopt.Runtime.create ~program () in
      (* bind handlers, then: *)
      let applied = Podopt.optimize rt ~threshold:100 ~workload in
      Fmt.pr "%a" Podopt.pp_applied applied
    ]} *)

(** {1 HIR — the handler language} *)

module Value = Podopt_hir.Value
module Ast = Podopt_hir.Ast
module Parse = Podopt_hir.Parse
module Pp = Podopt_hir.Pp
module Prim = Podopt_hir.Prim
module Check = Podopt_hir.Check
module Interp = Podopt_hir.Interp
module Compile = Podopt_hir.Compile
module Pipeline = Podopt_hir.Pipeline
module Size = Podopt_hir.Size
module Analysis = Podopt_hir.Analysis
module Rewrite = Podopt_hir.Rewrite
module Subst = Podopt_hir.Subst
module Deret = Podopt_hir.Deret
module Fresh = Podopt_hir.Fresh
module Opt_constfold = Podopt_hir.Opt_constfold
module Opt_copyprop = Podopt_hir.Opt_copyprop
module Opt_cse = Podopt_hir.Opt_cse
module Opt_dce = Podopt_hir.Opt_dce
module Opt_inline = Podopt_hir.Opt_inline

(** {1 Event system} *)

module Event = Podopt_eventsys.Event
module Handler = Podopt_eventsys.Handler
module Registry = Podopt_eventsys.Registry
module Runtime = Podopt_eventsys.Runtime
module Trace = Podopt_eventsys.Trace
module Costs = Podopt_eventsys.Costs
module Vclock = Podopt_eventsys.Vclock

(** {1 Profiling and analysis} *)

module Event_graph = Podopt_profile.Event_graph
module Reduce = Podopt_profile.Reduce
module Paths = Podopt_profile.Paths
module Chains = Podopt_profile.Chains
module Handler_graph = Podopt_profile.Handler_graph
module Subsume = Podopt_profile.Subsume
module Dominators = Podopt_profile.Dominators
module Dot = Podopt_profile.Dot
module Report = Podopt_profile.Report
module Trace_io = Podopt_profile.Trace_io

(** {1 Optimization} *)

module Plan = Podopt_optimize.Plan
module Superhandler = Podopt_optimize.Superhandler
module Chain_merge = Podopt_optimize.Chain_merge
module Guard = Podopt_optimize.Guard
module Speculate = Podopt_optimize.Speculate
module Defer = Podopt_optimize.Defer
module Adaptive = Podopt_optimize.Adaptive
module Breaker = Podopt_optimize.Breaker
module Driver = Podopt_optimize.Driver

(** {1 Fault injection}

    Deterministic, seed-driven fault plans ([lib/faults]): handler
    crashes, latency spikes, wire corruption, and link drops, each on
    an independent PRNG stream so scenarios replay byte-identically at
    any domain count.  {!Breaker} is the matching optimizer circuit
    breaker. *)

module Faults = Podopt_faults.Plan

(** {1 Persistent profile store}

    One run's per-shard adaptive state (event-graph counters, hot
    chains, binding signatures) serialized to a versioned file
    ([lib/store]); stores merge order-independently across runs and
    warm-start the broker via [Broker.config.profile_in]. *)

module Profile_store = Podopt_store.Store

(** {1 Multicore execution}

    The domain-pool layer ([lib/exec]) the parallel broker drains on:
    a bounded MPSC handoff channel, a reusable round barrier, and a
    fixed pool of worker domains driven in epochs. *)

module Exec_chan = Podopt_exec.Chan
module Exec_barrier = Podopt_exec.Barrier
module Exec_pool = Podopt_exec.Pool

(** {1 Serving — the broker layer}

    Many client sessions multiplexed onto N isolated shard runtimes,
    each with its own on-line adaptive optimizer; [domains > 1] drains
    shards in parallel with sequential-identical results (see
    [doc/BROKER.md]). *)

module Broker = Podopt_broker.Broker
module Broker_policy = Podopt_broker.Policy
module Broker_shard = Podopt_broker.Shard
module Broker_workload = Podopt_broker.Workload
module Broker_report = Podopt_broker.Report
module Shard_map = Podopt_broker.Shard_map
module Ingress = Podopt_broker.Ingress
module Session = Podopt_broker.Session
module Loadgen = Podopt_broker.Loadgen

(** {1 Record/replay}

    Deterministic run logs: {!Record} serializes everything a broker
    run consumes into a {!Replay_log.t}, {!Replay} reconstructs and
    re-runs it (byte-identical document at any domain count), and
    {!Replay_diff} is the differential oracle over a recorded log
    (optimizer on vs off, compiled vs interpreted handlers), with
    greedy shrinking to a minimal reproducer (see [doc/REPLAY.md]). *)

module Replay_log = Podopt_replay.Log
module Record = Podopt_replay.Record
module Replay = Podopt_replay.Replay
module Replay_diff = Podopt_replay.Diff

type applied = Driver.applied

(** The paper's methodology in one call: profile [workload] (two runs —
    event-level, then handler-level on the hot events), analyze with
    threshold W, and install guarded super-handlers. *)
val optimize :
  ?threshold:int -> ?strategy:Plan.chain_strategy -> ?speculate:bool ->
  workload:(unit -> unit) -> Runtime.t -> applied

(** Print what was installed, what was skipped and why, and the
    code-size report. *)
val pp_applied : Format.formatter -> applied -> unit
