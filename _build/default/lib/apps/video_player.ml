(* The video player on CTP (Sec. 4.2, Figs. 5, 6, 10, 11).

   Frames are produced at a fixed rate; each frame is a message pushed
   through the CTP composite protocol (fragmentation -> FEC -> sequencing
   -> transport -> flow control), while the controller clocks drive the
   adaptation chain.  The Fig. 10 execution model: each frame has a CPU
   budget of one frame interval; if processing finishes early the CPU
   idles until the next frame (absorbing overhead at low rates), if it
   overruns, the player falls behind — which is why optimization barely
   moves total time at 10 fps but wins clearly at 25 fps. *)

open Podopt_eventsys
module V = Podopt_hir.Value

(* Virtual time units per second.  One unit is roughly "one cheap
   machine operation cluster"; the scale is chosen so that a frame's CTP
   processing is a few percent of the frame budget at 10 fps. *)
let ticks_per_second = 500_000

type result = {
  frames : int;
  total_time : int;        (* virtual units *)
  handler_time : int;      (* virtual units spent in event handling *)
  deadline_misses : int;
}

let create ?costs () : Runtime.t =
  let rt = Podopt_ctp.Ctp.create ?costs () in
  rt.Runtime.emit_log_enabled <- false;
  Podopt_ctp.Ctp.open_session rt;
  rt

(* Deterministic frame payload: sizes vary like a simple VBR encoder
   (key frames every 10th frame are ~3x larger). *)
let frame_payload i =
  let size = if i mod 10 = 0 then 2400 else 1100 + (i * 37 mod 400) in
  let b = Bytes.create size in
  for j = 0 to size - 1 do
    Bytes.unsafe_set b j (Char.unsafe_chr ((i + (j * 7)) land 0xff))
  done;
  b

(* Clock periods: the high-priority controller clock fires ~5x per second,
   the low-priority one ~2x. *)
let clk_h_period = ticks_per_second / 5
let clk_l_period = ticks_per_second / 2

(* Re-arm controller clocks from OCaml (the app owns the timer wheel). *)
let arm_clocks rt ~horizon =
  let rec arm period event t =
    if t <= horizon then begin
      Runtime.raise_timed rt event ~delay:(t - Runtime.now rt) [ V.Int (t / period) ];
      arm period event (t + period)
    end
  in
  arm clk_h_period Podopt_ctp.Events.controller_clk_h (Runtime.now rt + clk_h_period);
  arm clk_l_period Podopt_ctp.Events.controller_clk_l (Runtime.now rt + clk_l_period)

(* The profiling workload: a short, representative burst of frames with
   clock activity, used by the two profiling phases. *)
let profile_workload rt ~frames () =
  arm_clocks rt ~horizon:(Runtime.now rt + (frames * ticks_per_second / 20));
  for i = 1 to frames do
    Podopt_ctp.Ctp.send rt ~priority:(if i mod 8 = 0 then 0 else 1) (frame_payload i);
    if i mod 50 = 25 then Podopt_ctp.Ctp.sample rt;
    Runtime.run ~until:(Runtime.now rt + (ticks_per_second / 20)) rt
  done;
  Runtime.run ~until:(Runtime.now rt + ticks_per_second) rt

(* Play [seconds] of video at [rate] fps against the frame-budget model. *)
let play rt ~(rate : int) ~(seconds : int) : result =
  let budget = ticks_per_second / rate in
  let frames = rate * seconds in
  Runtime.reset_measurements rt;
  let start = Runtime.now rt in
  arm_clocks rt ~horizon:(start + (frames * budget));
  let misses = ref 0 in
  for i = 1 to frames do
    let t0 = Runtime.now rt in
    Podopt_ctp.Ctp.send rt ~priority:(if i mod 8 = 0 then 0 else 1) (frame_payload i);
    (* drain acks/timeouts/clock events due within the frame interval *)
    Runtime.run ~until:(t0 + budget) rt;
    let elapsed = Runtime.now rt - t0 in
    if elapsed > budget then incr misses
    else
      (* idle until the next frame boundary *)
      Podopt_eventsys.Vclock.set rt.Runtime.clock (t0 + budget)
  done;
  {
    frames;
    total_time = Runtime.now rt - start;
    handler_time = Runtime.total_handler_time rt;
    deadline_misses = !misses;
  }

(* Fig. 11 metric: mean processing cost per dispatch for an event. *)
let mean_event_time rt event : float =
  let total = Runtime.event_processing_time rt event in
  let count = Runtime.event_dispatch_count rt event in
  if count = 0 then 0.0 else float_of_int total /. float_of_int count

let fig11_events =
  [ Podopt_ctp.Events.adapt; Podopt_ctp.Events.seg_from_user; Podopt_ctp.Events.seg2net ]

(* Representative argument vectors for direct event-processing-time
   measurement (Fig. 11: each event raised repeatedly, orig vs opt). *)
let fig11_args event =
  let seg = Bytes.make 512 '\x5a' in
  if event = Podopt_ctp.Events.adapt then [ V.Int 48; V.Int 1 ]
  else [ V.Bytes seg; V.Int 7; V.Int 0 (* not a last fragment *) ]

(* Mean processing cost of raising [event] directly [n] times. *)
let measure_event rt ~(event : string) ~(n : int) : float =
  let args = fig11_args event in
  Runtime.reset_measurements rt;
  for _ = 1 to n do
    Runtime.raise_sync rt event args
  done;
  Runtime.run rt;
  mean_event_time rt event
