(** Tree-walking interpreter for HIR: the {e unoptimized} execution
    engine.

    Each handler invocation builds a fresh environment, looks variables
    up by name, and reports one [tick] per AST node visited; the
    optimizer's payoff is measured against this baseline, mirroring the
    paper's original indirect, marshaled, per-handler execution path. *)

(** Services the interpreter needs from its embedding (the event runtime
    or a test harness). *)
type host = {
  raise_event : string -> Ast.mode -> Value.t list -> unit;
  get_global : string -> Value.t;
  set_global : string -> Value.t -> unit;
  emit : string -> Value.t list -> unit;
  tick : int -> unit;  (** per-AST-node cost; engine-dependent *)
  work : int -> unit;  (** intrinsic primitive work; engine-independent *)
}

(** A host that ignores everything (and raises on global reads). *)
val null_host : host

(** Internal control-flow exception for [return]; escapes only on
    malformed use. *)
exception Return_value of Value.t

exception Unbound_variable of string

(** Raised when handler code recurses past {!max_call_depth} (a
    catchable error instead of an OCaml stack overflow). *)
exception Call_depth_exceeded

val max_call_depth : int

(** Run [f] one call level deeper; shared by interpreter and compiled
    code so mixed stacks are bounded together. *)
val with_call_depth : (unit -> 'a) -> 'a

(** Shared evaluation of binary/unary operators (also used by the
    compiler and constant folding).  Raise {!Value.Type_error} on bad
    operands; [And]/[Or] here are strict — short-circuiting happens at
    the expression level. *)
val eval_binop : Ast.binop -> Value.t -> Value.t -> Value.t

val eval_unop : Ast.unop -> Value.t -> Value.t

(** [run ~host prog name args] executes procedure [name].  Missing
    parameters default to [Unit]; the result is the [return] value or
    [Unit]. *)
val run : ?host:host -> Ast.program -> string -> Value.t list -> Value.t
