(* Secure messenger over SecComm (Sec. 4.2, Fig. 12).

   Reproduces the paper's measurement protocol: a dummy message
   initializes the micro-protocols, then messages of a given packet size
   are pushed (sender) and popped (receiver); push time covers
   application -> UDP socket, pop time covers socket -> application. *)

open Podopt_eventsys
module V = Podopt_hir.Value

type measurement = {
  size : int;
  push_mean : float;  (* virtual units per message *)
  pop_mean : float;
}

let paper_sizes = [ 64; 128; 256; 512; 1024; 2048 ]

let create ?costs ?config () : Runtime.t =
  let rt = Podopt_seccomm.Seccomm.create ?costs ?config () in
  rt.Runtime.emit_log_enabled <- false;
  rt

let message ~size i =
  Bytes.init size (fun j -> Char.chr ((i + (j * 11)) land 0xff))

(* Capture what the sender put on the wire so the receiver pops real
   ciphertext. *)
let push_collect rt (msg : bytes) : bytes =
  let wire = ref Bytes.empty in
  Runtime.on_emit rt (fun tag args ->
      match tag, args with
      | "udp_tx", [ V.Bytes w ] -> wire := w
      | _ -> ());
  Podopt_seccomm.Seccomm.push rt msg;
  rt.Runtime.emit_hook <- None;
  !wire

(* The profiling workload for the optimizer: a handful of round trips. *)
let profile_workload rt () =
  for i = 1 to 40 do
    let wire = push_collect rt (message ~size:256 i) in
    Podopt_seccomm.Seccomm.pop rt wire
  done

(* The Fig. 12 measurement: after a dummy message, push/pop [rounds]
   messages of [size] bytes and report the mean times. *)
let measure rt ~(size : int) ~(rounds : int) : measurement =
  (* dummy message to initialize the layers (as in the paper) *)
  let dummy_wire = push_collect rt (message ~size 0) in
  Podopt_seccomm.Seccomm.pop rt dummy_wire;
  Runtime.reset_measurements rt;
  let wires = Array.init rounds (fun i -> push_collect rt (message ~size (i + 1))) in
  let push_total = Podopt_seccomm.Seccomm.push_time rt in
  Array.iter (fun wire -> Podopt_seccomm.Seccomm.pop rt wire) wires;
  let pop_total = Podopt_seccomm.Seccomm.pop_time rt in
  {
    size;
    push_mean = float_of_int push_total /. float_of_int rounds;
    pop_mean = float_of_int pop_total /. float_of_int rounds;
  }

(* Round-trip correctness check: pops must reproduce the pushed
   plaintext. *)
let roundtrip_ok rt ~(size : int) : bool =
  let msg = message ~size 99 in
  let wire = push_collect rt msg in
  let delivered = ref None in
  rt.Runtime.emit_log_enabled <- true;
  Runtime.on_emit rt (fun tag args ->
      match tag, args with
      | "deliver", [ V.Bytes m ] -> delivered := Some m
      | _ -> ());
  Podopt_seccomm.Seccomm.pop rt wire;
  rt.Runtime.emit_hook <- None;
  rt.Runtime.emit_log_enabled <- false;
  match !delivered with Some m -> Bytes.equal m msg | None -> false
