lib/seccomm/seccomm.mli: Costs Podopt_cactus Podopt_eventsys Runtime
