lib/net/link.mli: Packet Podopt_eventsys Runtime
