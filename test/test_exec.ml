(* lib/exec tests: the bounded MPSC channel, the reusable round
   barrier, and the fixed domain pool the parallel broker drains on.
   Cross-domain cases use real Domain.spawn so the mutex/condvar
   handoff is exercised, not just the single-domain fast paths. *)

module Chan = Podopt_exec.Chan
module Barrier = Podopt_exec.Barrier
module Pool = Podopt_exec.Pool

(* --- chan -------------------------------------------------------------- *)

let test_chan_fifo () =
  let c = Chan.create ~capacity:4 in
  Alcotest.(check bool) "push 1" true (Chan.try_push c 1);
  Alcotest.(check bool) "push 2" true (Chan.try_push c 2);
  Alcotest.(check bool) "push 3" true (Chan.try_push c 3);
  Alcotest.(check int) "length" 3 (Chan.length c);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Chan.try_pop c);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Chan.try_pop c);
  Alcotest.(check bool) "push 4" true (Chan.try_push c 4);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Chan.try_pop c);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Chan.try_pop c);
  Alcotest.(check (option int)) "empty" None (Chan.try_pop c)

let test_chan_bounds () =
  let c = Chan.create ~capacity:2 in
  Alcotest.(check bool) "slot 1" true (Chan.try_push c 1);
  Alcotest.(check bool) "slot 2" true (Chan.try_push c 2);
  Alcotest.(check bool) "full" false (Chan.try_push c 3);
  ignore (Chan.try_pop c);
  Alcotest.(check bool) "slot freed" true (Chan.try_push c 3);
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Chan.create: capacity <= 0") (fun () ->
      ignore (Chan.create ~capacity:0))

let test_chan_close () =
  let c = Chan.create ~capacity:2 in
  ignore (Chan.try_push c 1);
  Chan.close c;
  Chan.close c (* idempotent *);
  Alcotest.(check bool) "is_closed" true (Chan.is_closed c);
  Alcotest.check_raises "push after close" Chan.Closed (fun () ->
      Chan.push c 2);
  (* try_push is the non-blocking probe: on a closed chan it reports
     "no" rather than raising, so shutdown races stay exception-free *)
  Alcotest.(check bool) "try_push after close" false (Chan.try_push c 2);
  Alcotest.(check int) "rejected push left no trace" 1 (Chan.length c);
  Alcotest.(check (option int)) "drains" (Some 1) (Chan.pop c);
  Alcotest.(check (option int)) "then None" None (Chan.pop c);
  Alcotest.(check bool) "try_push on drained closed chan" false
    (Chan.try_push c 3)

let test_chan_cross_domain () =
  (* capacity 2, 100 items: the producer must block on the full queue
     repeatedly; the consumer must see every item in order *)
  let n = 100 in
  let c = Chan.create ~capacity:2 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do Chan.push c i done;
        Chan.close c)
  in
  let got = ref [] in
  let rec drain () =
    match Chan.pop c with
    | Some v ->
      got := v :: !got;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check (list int)) "ordered, complete"
    (List.init n (fun i -> i + 1))
    (List.rev !got)

(* --- barrier ----------------------------------------------------------- *)

let test_barrier_rounds () =
  let parties = 4 and rounds = 50 in
  let b = Barrier.create ~parties in
  Alcotest.(check int) "parties" parties (Barrier.parties b);
  let hits = Array.make parties 0 in
  let workers =
    List.init parties (fun w ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              hits.(w) <- hits.(w) + 1;
              Barrier.await b
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "rounds completed" rounds (Barrier.rounds b);
  Array.iteri
    (fun w h -> Alcotest.(check int) (Printf.sprintf "worker %d" w) rounds h)
    hits

let test_barrier_invalid () =
  Alcotest.check_raises "parties 0"
    (Invalid_argument "Barrier.create: parties <= 0") (fun () ->
      ignore (Barrier.create ~parties:0))

(* --- pool -------------------------------------------------------------- *)

let test_pool_runs_each_worker () =
  let domains = 3 and epochs = 20 in
  let pool = Pool.create ~domains in
  Alcotest.(check int) "size" domains (Pool.size pool);
  let counts = Array.make domains 0 in
  for _ = 1 to epochs do
    Pool.run pool (fun w -> counts.(w) <- counts.(w) + 1)
  done;
  Pool.shutdown pool;
  Array.iteri
    (fun w c ->
      Alcotest.(check int) (Printf.sprintf "worker %d epochs" w) epochs c)
    counts

let test_pool_propagates_exception () =
  let pool = Pool.create ~domains:2 in
  Alcotest.check_raises "worker failure reaches the caller"
    (Failure "boom") (fun () ->
      Pool.run pool (fun w -> if w = 1 then failwith "boom"));
  (* the epoch still completed for everyone: the pool stays usable *)
  let ok = ref 0 in
  Pool.run pool (fun _ -> incr ok);
  (* both workers bump the same ref unsynchronized only if racing; give
     each worker its own slot instead *)
  Alcotest.(check bool) "pool survives a failing epoch" true (!ok >= 1);
  Pool.shutdown pool

let test_pool_failure_latch () =
  (* the recovery supervisor leans on this: a raising task must not
     wedge the epoch barrier, and the pool must stay reusable across
     repeated failing epochs.  Every worker bumps its slot before one of
     them raises, so slot counts prove the epoch completed for everyone
     even when run re-raised. *)
  let domains = 3 in
  let pool = Pool.create ~domains in
  let runs = Array.make domains 0 in
  for epoch = 1 to 5 do
    (match
       Pool.run pool (fun w ->
           runs.(w) <- runs.(w) + 1;
           if w = epoch mod domains then failwith "epoch bomb")
     with
     | () -> Alcotest.fail "expected the epoch to raise"
     | exception Failure _ -> ());
    Array.iteri
      (fun w c ->
        Alcotest.(check int)
          (Printf.sprintf "worker %d completed epoch %d" w epoch)
          epoch c)
      runs
  done;
  (* a clean epoch afterwards still runs on every worker *)
  Pool.run pool (fun w -> runs.(w) <- runs.(w) + 1);
  Array.iteri
    (fun w c -> Alcotest.(check int) (Printf.sprintf "worker %d final" w) 6 c)
    runs;
  Pool.shutdown pool

let test_pool_simultaneous_failures () =
  (* two workers raise in the same epoch: exactly one exception latches
     and re-raises, wrapped in [Epoch_failures] carrying the count of
     the suppressed others — nothing is silently dropped.  A barrier
     splits arming from raising so both failures genuinely race. *)
  let domains = 3 in
  let pool = Pool.create ~domains in
  let armed = Barrier.create ~parties:domains in
  (match
     Pool.run pool (fun w ->
         Barrier.await armed;
         if w <> 0 then failwith "simultaneous bomb")
   with
  | () -> Alcotest.fail "expected the epoch to raise"
  | exception Pool.Epoch_failures (Failure msg, suppressed) ->
    Alcotest.(check string) "latched failure" "simultaneous bomb" msg;
    Alcotest.(check int) "one failure latched, one suppressed" 1 suppressed
  | exception e ->
    Alcotest.failf "expected Epoch_failures, got %s" (Printexc.to_string e));
  (* a single failure still surfaces unwrapped *)
  (match Pool.run pool (fun w -> if w = 1 then failwith "solo bomb") with
  | () -> Alcotest.fail "expected the epoch to raise"
  | exception Failure msg ->
    Alcotest.(check string) "bare failure" "solo bomb" msg
  | exception e ->
    Alcotest.failf "expected the bare Failure, got %s" (Printexc.to_string e));
  (* and the pool is still fully usable *)
  let ran = Array.make domains 0 in
  Pool.run pool (fun w -> ran.(w) <- ran.(w) + 1);
  Array.iteri
    (fun w c -> Alcotest.(check int) (Printf.sprintf "worker %d ran" w) 1 c)
    ran;
  Pool.shutdown pool

let test_pool_run_steal () =
  (* the stealing epoch: every item of the frozen run queue is claimed
     exactly once, whatever the racy claim interleaving; per-item
     failures latch like per-worker ones *)
  let domains = 3 and items = 100 in
  let pool = Pool.create ~domains in
  let claims = Array.make items 0 in
  Pool.run_steal pool
    (Array.init items (fun i -> i))
    (fun ~worker:_ ~slot x ->
      Alcotest.(check int) "slot matches item" x slot;
      claims.(x) <- claims.(x) + 1);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "item %d claimed once" i) 1 c)
    claims;
  (* a failing item raises after the epoch completes; the rest of the
     queue still drains exactly once *)
  let claims = Array.make items 0 in
  (match
     Pool.run_steal pool
       (Array.init items (fun i -> i))
       (fun ~worker:_ ~slot:_ x ->
         claims.(x) <- claims.(x) + 1;
         if x = 37 then failwith "item bomb")
   with
  | () -> Alcotest.fail "expected the epoch to raise"
  | exception Failure msg ->
    Alcotest.(check string) "item failure" "item bomb" msg
  | exception Pool.Epoch_failures _ ->
    (* impossible here: only item 37 raises *)
    Alcotest.fail "single failure must surface unwrapped");
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "item %d claimed once" i) 1 c)
    claims;
  (* an empty queue is a clean epoch *)
  Pool.run_steal pool [||] (fun ~worker:_ ~slot:_ _ -> assert false);
  Pool.shutdown pool

let test_pool_shutdown () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      Pool.run pool (fun _ -> ()))

let test_pool_partition_sum () =
  (* the broker's exact usage: disjoint slots pinned by [i mod domains],
     summed after the join — no two workers ever touch the same cell *)
  let domains = 4 and cells = 10 in
  let pool = Pool.create ~domains in
  let slots = Array.make cells 0 in
  for epoch = 1 to 5 do
    Pool.run pool (fun w ->
        Array.iteri
          (fun i _ -> if i mod domains = w then slots.(i) <- slots.(i) + epoch)
          slots)
  done;
  Pool.shutdown pool;
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) 15 v)
    slots

let suite =
  [
    Alcotest.test_case "chan: fifo" `Quick test_chan_fifo;
    Alcotest.test_case "chan: bounded" `Quick test_chan_bounds;
    Alcotest.test_case "chan: close semantics" `Quick test_chan_close;
    Alcotest.test_case "chan: cross-domain handoff" `Quick
      test_chan_cross_domain;
    Alcotest.test_case "barrier: cyclic rounds" `Quick test_barrier_rounds;
    Alcotest.test_case "barrier: invalid" `Quick test_barrier_invalid;
    Alcotest.test_case "pool: every worker, every epoch" `Quick
      test_pool_runs_each_worker;
    Alcotest.test_case "pool: exception propagation" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "pool: failing epochs complete and pool stays usable"
      `Quick test_pool_failure_latch;
    Alcotest.test_case "pool: simultaneous failures are counted, not dropped"
      `Quick test_pool_simultaneous_failures;
    Alcotest.test_case "pool: stealing run queue claims each item once"
      `Quick test_pool_run_steal;
    Alcotest.test_case "pool: shutdown" `Quick test_pool_shutdown;
    Alcotest.test_case "pool: partitioned mutation" `Quick
      test_pool_partition_sum;
  ]
