(** Threshold reduction (Sec. 3.1, Fig. 6): drop every edge with weight
    below the threshold; nodes left without incident edges disappear. *)

val reduce : Event_graph.t -> threshold:int -> Event_graph.t
