(** SimpleMenu: an Athena-style popup menu widget — the xterm Popup
    scenario of Fig. 13.  Ctrl+Button triggers two action procedures in
    sequence: [position_menu] (geometry, item layout, pointer query) and
    [popup_menu] (map, grab, draw; invokes two motion-tracking
    callbacks). *)

(** The per-widget HIR source ($W = widget name, $N = item count,
    already substituted). *)
val source : widget:string -> items:int -> string

(** Create the menu under [owner], register its actions/callbacks, and
    install the ["Ctrl<Btn1Down>"] translation on [owner].  Call before
    {!Client.realize}. *)
val install :
  Client.t -> owner:Widget.t -> ?items:int -> name:string -> unit -> Widget.t
