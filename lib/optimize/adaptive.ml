(* On-line adaptive re-optimization (Sec. 5: "on-line analysis and
   optimization ... are potential extensions to this work").

   Instead of the paper's off-line, manual profile-then-optimize cycle,
   this controller keeps event tracing enabled, watches the runtime's
   fallback counter, and re-runs analyze/apply from the accumulated trace
   whenever the installed super-handlers stop matching the live bindings.
   Correctness is unaffected (the guards already ensure that); this
   merely restores the fast path automatically after reconfiguration. *)

open Podopt_eventsys

type policy = {
  fallback_limit : int;   (* re-optimize after this many fallbacks *)
  min_trace : int;        (* but only once the trace has this many entries *)
  threshold : int;        (* analysis threshold W *)
  strategy : Plan.chain_strategy;
  max_trace : int;        (* bound the trace to this length *)
  compile : bool;         (* compile super-handlers (vs interpret the HIR) *)
}

let default_policy =
  {
    fallback_limit = 32;
    min_trace = 200;
    threshold = Driver.default_threshold;
    strategy = Plan.Monolithic;
    max_trace = 100_000;
    compile = true;
  }

type t = {
  rt : Runtime.t;
  policy : policy;
  mutable fallbacks_at_last_opt : int;
  mutable reoptimizations : int;
}

(* Create the controller and enable continuous event tracing.  The
   runtime keeps paying the (cheap) trace-recording cost; that is the
   price of on-line profiling. *)
let create ?(policy = default_policy) (rt : Runtime.t) : t =
  Trace.enable_events rt.Runtime.trace;
  { rt; policy; fallbacks_at_last_opt = 0; reoptimizations = 0 }

let fallbacks_since_last (t : t) =
  let current =
    t.rt.Runtime.stats.Runtime.fallbacks + t.rt.Runtime.stats.Runtime.segment_fallbacks
  in
  (* the application may reset runtime measurements at any time; detect
     the counter going backwards and re-baseline *)
  if current < t.fallbacks_at_last_opt then t.fallbacks_at_last_opt <- 0;
  current - t.fallbacks_at_last_opt

let should_reoptimize (t : t) : bool =
  Trace.length t.rt.Runtime.trace >= t.policy.min_trace
  && ((* nothing installed yet: perform the initial optimization *)
      Runtime.optimized_events t.rt = []
     || fallbacks_since_last t >= t.policy.fallback_limit)

(* Re-analyze from the accumulated trace and reinstall.  Returns the
   applied report when a re-optimization happened. *)
let reoptimize (t : t) : Driver.applied option =
  let plan = Driver.analyze ~threshold:t.policy.threshold ~strategy:t.policy.strategy t.rt in
  if plan.Plan.actions = [] then None
  else begin
    let applied = Driver.apply ~compile:t.policy.compile t.rt plan in
    t.fallbacks_at_last_opt <-
      t.rt.Runtime.stats.Runtime.fallbacks
      + t.rt.Runtime.stats.Runtime.segment_fallbacks;
    t.reoptimizations <- t.reoptimizations + 1;
    Trace.clear t.rt.Runtime.trace;
    Some applied
  end

(* Poll: call periodically (e.g. from the application's idle loop).
   Keeps the trace bounded and re-optimizes when the policy triggers.
   Bounding retains the newest half of the window rather than clearing:
   dropping the whole trace would discard all profile history and stall
   re-optimization until [min_trace] entries rebuild from scratch. *)
let tick (t : t) : Driver.applied option =
  if Trace.length t.rt.Runtime.trace > t.policy.max_trace then
    Trace.truncate_oldest t.rt.Runtime.trace ~keep:(t.policy.max_trace / 2);
  if should_reoptimize t then reoptimize t else None

let reoptimizations (t : t) = t.reoptimizations
