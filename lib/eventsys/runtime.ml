(* The event runtime: the paper's general model of Sec. 2 plus the
   optimized dispatch paths of Sec. 3.

   Generic path for [raise ev args]:
     registry lookup (+lock) -> marshal args -> per handler: indirect call,
     unmarshal, interpret the handler body.

   Optimized path (installed by [lib/optimize]):
     binding-version guard -> one direct call of a compiled, merged,
     specialized super-handler.  Stale guards fall back to the generic
     path (Sec. 3.3); partitioned entries (Fig. 14) fall back only for the
     events whose bindings changed. *)

open Podopt_hir

type pending = { pev : Event.t; pargs : Value.t list; pmode : Ast.mode }

(* A super-handler installed for an event. *)
type opt_entry = {
  covered : (Event.t * int) list;  (* events merged in + their versions *)
  arity : int;  (* argument-vector width the compiled code expects *)
  kind : opt_kind;
}

and opt_kind =
  | Super of Compile.compiled_proc
  | Batch of Compile.compiled_proc
      (* a super-handler that additionally rides batch windows: inside
         an open window the first dispatch verifies the guards and pays
         the state lock once, then every further dispatch of a verified
         entry pays only [batch_step] while the registry generation is
         unchanged — the per-op constants amortize across the run of
         same-path ops (Leinweber & Hartenstein's compile-time event
         batching, on top of Sec. 3's merging) *)
  | Partitioned of segment list
  | Deferred of deferred_entry
      (* Sec. 5: perform no processing for this event now; when the next
         event occurs, run a jointly-optimized pair body if one exists
         for it, otherwise flush the deferred event alone first *)

and deferred_entry = {
  def_alone : Compile.compiled_proc;  (* the event's own super-handler *)
  def_arity : int;
  def_pairs : pair list;
}

and pair = {
  pair_event : Event.t;          (* the follower event *)
  pair_version : int;            (* follower's binding version at install *)
  pair_arity : int;              (* follower slice arity *)
  pair_compiled : Compile.compiled_proc;
      (* merged (deferred ++ follower) body; the follower's positional
         args are shifted past the deferred event's arity *)
}

and segment = {
  seg_event : Event.t;
  seg_version : int;
  seg_arity : int;
  seg_compiled : Compile.compiled_proc;
  seg_next : Event.t option;  (* tail sync-raise target consumed by driver *)
}

(* One batch window: opened by the drain loop around a run of same-path
   ops.  [win_gen] is the registry generation the verified set is valid
   for; any binding mutation invalidates every verification at once. *)
type window = {
  mutable win_gen : int;
  win_verified : (int, unit) Hashtbl.t;  (* event ids with checked guards *)
  mutable win_lock_paid : bool;  (* the window's one state-lock charge *)
}

(* Pad an argument vector with Unit up to [arity]; mirrors the generic
   path's convention that missing handler parameters default to Unit. *)
let pad_args arity args =
  let n = List.length args in
  if n >= arity then args
  else args @ List.init (arity - n) (fun _ -> Value.Unit)

type stats = {
  mutable generic_dispatches : int;
  mutable optimized_dispatches : int;
  mutable batched_dispatches : int; (* rode an open batch window *)
  mutable fallbacks : int;          (* stale guard -> generic *)
  mutable segment_fallbacks : int;  (* partitioned: one segment fell back *)
  mutable spec_hits : int;
  mutable spec_misses : int;
  mutable marshal_bytes : int;
  mutable deferred_pairs : int;     (* deferral consumed by a pair body *)
  mutable deferred_flushes : int;   (* deferral flushed alone *)
  mutable handler_failures : int;   (* exceptions isolated at dispatch *)
}

type t = {
  clock : Vclock.t;
  costs : Costs.model;
  events : Event.table;
  registry : Registry.t;
  queue : pending Equeue.t;
  globals : (string, Value.t) Hashtbl.t;
  trace : Trace.t;
  mutable program : Ast.program;
  mutable emit_log : (string * Value.t list) list;  (* reversed *)
  mutable emit_log_enabled : bool;  (* benches disable retention *)
  mutable emit_hook : (string -> Value.t list -> unit) option;
  mutable dispatch_hook : (string -> int -> unit) option;
  opt_entries : (int, opt_entry) Hashtbl.t;
  spec_table : (int, Event.t) Hashtbl.t;  (* A -> predicted next B *)
  mutable prefetched : (int * Handler.t list) option;
  mutable depth : int;
  event_time : (int, int) Hashtbl.t;  (* cumulative processing cost per event *)
  event_count : (int, int) Hashtbl.t;
  mutable handler_time : int;  (* cost spent inside outermost dispatches *)
  stats : stats;
  (* (event id, arming depth, cell): a tail sync-raise of the expected
     next chain event, at the arming depth, is handed to the chain driver
     instead of being dispatched.  The depth guard keeps raises made
     inside nested dispatches (which belong to those dispatches) from
     being captured. *)
  mutable capture : (int * int * Value.t list option ref) option;
  mutable deferred : (Event.t * Value.t list * deferred_entry) option;
  (* the open batch window, if any; only outermost dispatches of Batch
     entries ride it *)
  mutable batch_window : window option;
  (* with isolation on, an exception escaping handler code is caught at
     the dispatch boundary (counted in stats.handler_failures) instead
     of unwinding the caller's loop; Prim.Halt_event stays control flow *)
  mutable isolate_failures : bool;
}

let create ?(costs = Costs.default) ?(program = []) () =
  {
    clock = Vclock.create ();
    costs;
    events = Event.create_table ();
    registry = Registry.create ();
    queue = Equeue.create ();
    globals = Hashtbl.create 32;
    trace = Trace.create ();
    program;
    emit_log = [];
    emit_log_enabled = true;
    emit_hook = None;
    dispatch_hook = None;
    opt_entries = Hashtbl.create 16;
    spec_table = Hashtbl.create 8;
    prefetched = None;
    depth = 0;
    event_time = Hashtbl.create 32;
    event_count = Hashtbl.create 32;
    handler_time = 0;
    stats =
      {
        generic_dispatches = 0;
        optimized_dispatches = 0;
        batched_dispatches = 0;
        fallbacks = 0;
        segment_fallbacks = 0;
        spec_hits = 0;
        spec_misses = 0;
        marshal_bytes = 0;
        deferred_pairs = 0;
        deferred_flushes = 0;
        handler_failures = 0;
      };
    capture = None;
    deferred = None;
    batch_window = None;
    isolate_failures = false;
  }

let charge t units = Vclock.advance t.clock units
let now t = Vclock.now t.clock

let event t name = Event.intern t.events name
let set_program t program = t.program <- program
let program t = t.program

(* --- Globals (shared state; accesses are lock-charged, Sec. 3.2) ----- *)

exception Unbound_global of string

let get_global t name =
  match Hashtbl.find_opt t.globals name with
  | Some v -> v
  | None -> raise (Unbound_global name)

let set_global t name v = Hashtbl.replace t.globals name v

let charged_get_global t name =
  charge t t.costs.lock;
  get_global t name

let charged_set_global t name v =
  charge t t.costs.lock;
  set_global t name v

(* --- Observable output ------------------------------------------------ *)

let emit t tag args =
  if t.emit_log_enabled then t.emit_log <- (tag, args) :: t.emit_log;
  match t.emit_hook with Some f -> f tag args | None -> ()

let emits t = List.rev t.emit_log
let clear_emits t = t.emit_log <- []
let on_emit t f = t.emit_hook <- Some f
let on_dispatch t f = t.dispatch_hook <- Some f

(* --- Binding API ------------------------------------------------------ *)

let bind t ~event:name ?order handler =
  let ev = event t name in
  Registry.bind t.registry ev ?order handler

let unbind t ~event:name ~handler =
  let ev = event t name in
  Registry.unbind t.registry ev ~name:handler

let handlers t name = Registry.handlers t.registry (event t name)
let binding_version t name = Registry.version t.registry (event t name)

(* --- Hosts ------------------------------------------------------------ *)

(* Conditions that must never be converted into an isolated "handler
   failure": the process state behind them (heap exhaustion, blown
   stack, violated invariant) is not something a retry can repair. *)
let fatal_exn = function
  | Out_of_memory | Stack_overflow | Assert_failure _ -> true
  | _ -> false

(* Declared early so the interp/compiled hosts can raise events. *)
(* An event *occurs* when its handlers run: synchronous raises are traced
   immediately; queued (async/timed) activations are traced when the
   scheduler dispatches them, so the event trace reflects occurrence
   order as in the paper's instrumentation. *)
let rec raise_event t name (mode : Ast.mode) args =
  let ev = event t name in
  (* partitioned-chain capture: a tail sync-raise of the expected next
     event is handed to the chain driver instead of being dispatched *)
  (match t.capture with
   | Some (id, depth, cell) when id = ev.Event.id && depth = t.depth && mode = Ast.Sync
     ->
     cell := Some args;
     t.capture <- None
   | _ ->
     (match mode with
      | Ast.Sync ->
        Trace.record_event t.trace ~event:name ~mode ~time:(now t) ~depth:t.depth;
        dispatch t ev args
      | Ast.Async ->
        charge t t.costs.enqueue;
        Equeue.push t.queue ~due:(now t) { pev = ev; pargs = args; pmode = mode }
      | Ast.Timed d ->
        charge t t.costs.enqueue;
        Equeue.push t.queue ~due:(now t + d) { pev = ev; pargs = args; pmode = mode }))

and interp_host t : Interp.host =
  {
    Interp.raise_event = (fun name mode args -> raise_event t name mode args);
    get_global = (fun g -> charged_get_global t g);
    set_global = (fun g v -> charged_set_global t g v);
    emit = (fun tag args -> emit t tag args);
    tick = (fun n -> charge t (n * t.costs.interp_step));
    work = (fun w -> charge t w);
  }

and compiled_host t : Interp.host =
  {
    Interp.raise_event = (fun name mode args -> raise_event t name mode args);
    get_global =
      (fun g ->
        charge t t.costs.lock_merged;
        get_global t g);
    set_global =
      (fun g v ->
        charge t t.costs.lock_merged;
        set_global t g v);
    emit = (fun tag args -> emit t tag args);
    tick = (fun n -> charge t (n * t.costs.compiled_step));
    work = (fun w -> charge t w);
  }

(* Inside a batch window the handler holds the state lock across the
   whole run of ops, so global accesses cost [lock_batch] (default 0)
   instead of [lock_merged].  Everything else matches the compiled
   host: the compiled body is the same, only the window's charging
   differs — execution order and observables are untouched. *)
and batch_host t : Interp.host =
  {
    Interp.raise_event = (fun name mode args -> raise_event t name mode args);
    get_global =
      (fun g ->
        charge t t.costs.lock_batch;
        get_global t g);
    set_global =
      (fun g v ->
        charge t t.costs.lock_batch;
        set_global t g v);
    emit = (fun tag args -> emit t tag args);
    tick = (fun n -> charge t (n * t.costs.compiled_step));
    work = (fun w -> charge t w);
  }

and note_failure t = t.stats.handler_failures <- t.stats.handler_failures + 1

(* Run a compiled super-handler body.  Halt_event is control flow; any
   other exception is isolated (counted, swallowed) when the runtime is
   in isolation mode, so one hostile handler cannot unwind the caller's
   drain loop. *)
and run_compiled ?host t compiled args =
  let host = match host with Some h -> h | None -> compiled_host t in
  try ignore (compiled host args) with
  | Prim.Halt_event -> ()
  | e when t.isolate_failures && not (fatal_exn e) -> note_failure t

and run_handler t (ev : Event.t) (h : Handler.t) args =
  Trace.record_handler_begin t.trace ~event:ev.Event.name ~handler:h.Handler.name
    ~time:(now t) ~depth:t.depth;
  (try
     match h.Handler.code with
     | Handler.Native f -> f (interp_host t) args
     | Handler.Hir proc -> ignore (Interp.run ~host:(interp_host t) t.program proc args)
   with
   | Prim.Halt_event as e -> raise e  (* stops this event's remaining handlers *)
   | e when t.isolate_failures && not (fatal_exn e) -> note_failure t);
  Trace.record_handler_end t.trace ~event:ev.Event.name ~handler:h.Handler.name
    ~time:(now t) ~depth:t.depth

(* The generic (unoptimized) dispatch path. *)
and generic_dispatch t (ev : Event.t) args =
  t.stats.generic_dispatches <- t.stats.generic_dispatches + 1;
  (* registry access: lookup + state-maintenance lock *)
  let hs =
    match t.prefetched with
    | Some (id, hs) when id = ev.Event.id ->
      t.stats.spec_hits <- t.stats.spec_hits + 1;
      t.prefetched <- None;
      hs
    | _ ->
      (match t.prefetched with
       | Some _ ->
         t.stats.spec_misses <- t.stats.spec_misses + 1;
         t.prefetched <- None
       | None -> ());
      charge t (t.costs.registry_lookup + t.costs.lock);
      Registry.handlers t.registry ev
  in
  match hs with
  | [] -> () (* an event with no bindings is ignored (Sec. 2.1) *)
  | hs ->
    (* The raise site marshals the argument vector and the dispatcher
       unmarshals it once; every handler then shares the same decoded
       values (as with Cactus's shared message structure, so that byte-
       buffer mutations made by one handler are seen by the next — the
       same aliasing the merged super-handler exhibits). *)
    let buf = Value.marshal args in
    let len = String.length buf in
    t.stats.marshal_bytes <- t.stats.marshal_bytes + len;
    charge t (t.costs.marshal_base + (t.costs.marshal_per_byte * len));
    charge t (t.costs.unmarshal_base + (t.costs.unmarshal_per_byte * len));
    let args' = Value.unmarshal buf in
    (try
       List.iter
         (fun h ->
           charge t t.costs.indirect_call;
           run_handler t ev h args')
         hs
     with Prim.Halt_event -> () (* stop remaining handlers of this event *))

and guard_ok t entry =
  charge t (t.costs.guard_check * List.length entry.covered);
  List.for_all
    (fun (ev, ver) -> Registry.version t.registry ev = ver)
    entry.covered

and run_partitioned t segments args =
  let rec go segments args =
    match segments with
    | [] -> ()
    | seg :: rest ->
      charge t t.costs.guard_check;
      let cell = ref None in
      (match seg.seg_next with
       | Some nxt -> t.capture <- Some (nxt.Event.id, t.depth, cell)
       | None -> ());
      (if Registry.version t.registry seg.seg_event = seg.seg_version then begin
         charge t t.costs.direct_call;
         run_compiled t seg.seg_compiled (pad_args seg.seg_arity args)
       end
       else begin
         t.stats.segment_fallbacks <- t.stats.segment_fallbacks + 1;
         generic_dispatch t seg.seg_event args
       end);
      t.capture <- None;
      (match rest, !cell with
       | [], _ -> ()
       | _ :: _, Some next_args -> go rest next_args
       | _ :: _, None ->
         (* chain broken at runtime: the expected tail raise did not
            happen, so later segments must not run *)
         ())
  in
  go segments args

(* Resolve a pending deferral when the next event occurs (Sec. 5).
   Returns true when the current event was consumed by a jointly
   optimized pair body; otherwise the deferred event is flushed alone and
   the caller proceeds normally. *)
and resolve_deferred t (ev : Event.t) args : bool =
  match t.deferred with
  | None -> false
  | Some (aev, aargs, de) ->
    t.deferred <- None;
    ignore aev;
    (match
       List.find_opt (fun p -> Event.equal p.pair_event ev) de.def_pairs
     with
     | Some p when Registry.version t.registry p.pair_event = p.pair_version ->
       t.stats.deferred_pairs <- t.stats.deferred_pairs + 1;
       t.stats.optimized_dispatches <- t.stats.optimized_dispatches + 1;
       charge t (t.costs.guard_check + t.costs.direct_call);
       let combined = pad_args de.def_arity aargs @ pad_args p.pair_arity args in
       run_compiled t p.pair_compiled combined;
       true
     | _ ->
       t.stats.deferred_flushes <- t.stats.deferred_flushes + 1;
       charge t t.costs.direct_call;
       run_compiled t de.def_alone (pad_args de.def_arity aargs);
       false)

and dispatch t (ev : Event.t) args =
  let t0 = now t in
  let outermost = t.depth = 0 in
  Trace.record_dispatch_begin t.trace ~event:ev.Event.name ~time:t0 ~depth:t.depth;
  t.depth <- t.depth + 1;
  let consumed = if outermost then resolve_deferred t ev args else false in
  (match Hashtbl.find_opt t.opt_entries ev.Event.id with
   | _ when consumed -> ()
   | Some entry ->
     (match entry.kind with
      | Super compiled ->
        if guard_ok t entry then begin
          t.stats.optimized_dispatches <- t.stats.optimized_dispatches + 1;
          charge t t.costs.direct_call;
          run_compiled t compiled (pad_args entry.arity args)
        end
        else begin
          t.stats.fallbacks <- t.stats.fallbacks + 1;
          generic_dispatch t ev args
        end
      | Batch compiled ->
        (match (if outermost then t.batch_window else None) with
         | Some w ->
           (* any binding mutation since the last check invalidates the
              whole verified set at once *)
           let gen = Registry.generation t.registry in
           if gen <> w.win_gen then begin
             Hashtbl.reset w.win_verified;
             w.win_gen <- gen
           end;
           if Hashtbl.mem w.win_verified ev.Event.id then begin
             (* verified earlier in this window: the guard check, call
                dispatch, and state lock all amortized away *)
             t.stats.batched_dispatches <- t.stats.batched_dispatches + 1;
             charge t t.costs.batch_step;
             run_compiled ~host:(batch_host t) t compiled
               (pad_args entry.arity args)
           end
           else if guard_ok t entry then begin
             t.stats.batched_dispatches <- t.stats.batched_dispatches + 1;
             if not w.win_lock_paid then begin
               charge t t.costs.lock;
               w.win_lock_paid <- true
             end;
             charge t t.costs.direct_call;
             Hashtbl.replace w.win_verified ev.Event.id ();
             run_compiled ~host:(batch_host t) t compiled
               (pad_args entry.arity args)
           end
           else begin
             (* stale guard mid-window: fall back op-by-op and close the
                window so the rest of the run stays generic *)
             t.stats.fallbacks <- t.stats.fallbacks + 1;
             t.batch_window <- None;
             generic_dispatch t ev args
           end
         | None ->
           (* outside a window a batch entry is an ordinary super-handler *)
           if guard_ok t entry then begin
             t.stats.optimized_dispatches <- t.stats.optimized_dispatches + 1;
             charge t t.costs.direct_call;
             run_compiled t compiled (pad_args entry.arity args)
           end
           else begin
             t.stats.fallbacks <- t.stats.fallbacks + 1;
             generic_dispatch t ev args
           end)
      | Deferred de ->
        if outermost && guard_ok t entry then
          (* minimal processing now; the bulk runs when the next event
             arrives *)
          t.deferred <- Some (ev, args, de)
        else if guard_ok t entry then begin
          (* nested occurrence: run the event's own super-handler now *)
          t.stats.optimized_dispatches <- t.stats.optimized_dispatches + 1;
          charge t t.costs.direct_call;
          run_compiled t de.def_alone (pad_args de.def_arity args)
        end
        else begin
          t.stats.fallbacks <- t.stats.fallbacks + 1;
          generic_dispatch t ev args
        end
      | Partitioned segments ->
        t.stats.optimized_dispatches <- t.stats.optimized_dispatches + 1;
        run_partitioned t segments args)
   | None -> generic_dispatch t ev args);
  t.depth <- t.depth - 1;
  Trace.record_dispatch_end t.trace ~event:ev.Event.name ~time:(now t) ~depth:t.depth;
  (* speculative preparation (Sec. 5): pull the predicted successor's
     handler list during the "free cycles" after handling [ev] *)
  (match Hashtbl.find_opt t.spec_table ev.Event.id with
   | Some next ->
     t.prefetched <- Some (next.Event.id, Registry.handlers t.registry next)
   | None -> ());
  let dt = now t - t0 in
  Hashtbl.replace t.event_time ev.Event.id
    (dt + Option.value ~default:0 (Hashtbl.find_opt t.event_time ev.Event.id));
  Hashtbl.replace t.event_count ev.Event.id
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.event_count ev.Event.id));
  (match t.dispatch_hook with Some f -> f ev.Event.name dt | None -> ());
  if outermost then t.handler_time <- t.handler_time + dt

(* --- Public raise / scheduler ---------------------------------------- *)

let raise_sync t name args = raise_event t name Ast.Sync args
let raise_async t name args = raise_event t name Ast.Async args
let raise_timed t name ~delay args = raise_event t name (Ast.Timed delay) args

(* Cancel pending activations of an event (Cactus delayed-event cancel). *)
let cancel t name =
  let ev = event t name in
  Equeue.remove_if t.queue (fun p -> Event.equal p.pev ev)

(* Flush a pending deferral (Sec. 5): run the deferred event's own
   super-handler now.  Returns whether anything was flushed. *)
let flush_deferred t =
  match t.deferred with
  | None -> false
  | Some (aev, aargs, de) ->
    t.deferred <- None;
    let t0 = now t in
    let outermost = t.depth = 0 in
    t.depth <- t.depth + 1;
    t.stats.deferred_flushes <- t.stats.deferred_flushes + 1;
    charge t t.costs.direct_call;
    run_compiled t de.def_alone (pad_args de.def_arity aargs);
    t.depth <- t.depth - 1;
    let dt = now t - t0 in
    (* the dispatch that deferred already counted the occurrence; only
       the processing time is attributed here *)
    Hashtbl.replace t.event_time aev.Event.id
      (dt + Option.value ~default:0 (Hashtbl.find_opt t.event_time aev.Event.id));
    (match t.dispatch_hook with Some f -> f aev.Event.name dt | None -> ());
    if outermost then t.handler_time <- t.handler_time + dt;
    true

(* Run scheduled activations.  [until] bounds virtual time: activations
   due later stay queued.  When the queue drains completely, any pending
   deferral is flushed (which may schedule new activations). *)
let rec run ?until t =
  match Equeue.peek t.queue with
  | None -> if flush_deferred t then run ?until t
  | Some (due, _) ->
    (match until with
     | Some limit when due > limit -> ()
     | _ ->
       (match Equeue.pop t.queue with
        | None -> ()
        | Some (due, p) ->
          if due > now t then Vclock.set t.clock due;
          Trace.record_event t.trace ~event:p.pev.Event.name ~mode:p.pmode
            ~time:(now t) ~depth:t.depth;
          dispatch t p.pev p.pargs;
          run ?until t))

let step t =
  match Equeue.pop t.queue with
  | None -> false
  | Some (due, p) ->
    if due > now t then Vclock.set t.clock due;
    Trace.record_event t.trace ~event:p.pev.Event.name ~mode:p.pmode ~time:(now t)
      ~depth:t.depth;
    dispatch t p.pev p.pargs;
    true

let pending t = Equeue.length t.queue

(* --- Batch windows (used by the shard drain loop) --------------------- *)

(* Open a window around a run of same-path ops.  Nesting is not
   meaningful: opening while a window is open restarts it. *)
let open_batch t =
  t.batch_window <-
    Some
      {
        win_gen = Registry.generation t.registry;
        win_verified = Hashtbl.create 8;
        win_lock_paid = false;
      }

(* Close the open window (idempotent — a mid-window guard failure
   already closed it). *)
let close_batch t = t.batch_window <- None
let in_batch t = t.batch_window <> None

(* --- Optimization installation (used by lib/optimize) ---------------- *)

let install_super t ~event:name ~covered ~arity compiled =
  let ev = event t name in
  let covered =
    List.map
      (fun n ->
        let e = event t n in
        (e, Registry.version t.registry e))
      covered
  in
  Hashtbl.replace t.opt_entries ev.Event.id { covered; arity; kind = Super compiled }

(* Install a batch super-handler: the same compiled body as
   [install_super], additionally eligible for batch windows. *)
let install_batch t ~event:name ~covered ~arity compiled =
  let ev = event t name in
  let covered =
    List.map
      (fun n ->
        let e = event t n in
        (e, Registry.version t.registry e))
      covered
  in
  Hashtbl.replace t.opt_entries ev.Event.id { covered; arity; kind = Batch compiled }

let install_partitioned t ~event:name segments =
  let ev = event t name in
  let covered = List.map (fun s -> (s.seg_event, s.seg_version)) segments in
  Hashtbl.replace t.opt_entries ev.Event.id
    { covered; arity = 0; kind = Partitioned segments }

(* Install a deferred entry (Sec. 5): raising [event] stores its
   arguments; when the next event occurs, a jointly-optimized pair body
   runs if one was compiled for it, otherwise the deferred event's own
   super-handler runs first. *)
let install_deferred t ~event:name ~covered ~arity ~(alone : Compile.compiled_proc)
    (pairs : (string * int * Compile.compiled_proc) list) =
  let ev = event t name in
  let covered =
    List.map
      (fun n ->
        let e = event t n in
        (e, Registry.version t.registry e))
      covered
  in
  let def_pairs =
    List.map
      (fun (next, pair_arity, compiled) ->
        let pe = event t next in
        {
          pair_event = pe;
          pair_version = Registry.version t.registry pe;
          pair_arity;
          pair_compiled = compiled;
        })
      pairs
  in
  Hashtbl.replace t.opt_entries ev.Event.id
    {
      covered;
      arity;
      kind = Deferred { def_alone = alone; def_arity = arity; def_pairs };
    }

let make_segment t ~event:name ?next ~arity compiled =
  let ev = event t name in
  {
    seg_event = ev;
    seg_version = Registry.version t.registry ev;
    seg_arity = arity;
    seg_compiled = compiled;
    seg_next = Option.map (event t) next;
  }

(* Uninstalling closes any open window: a reinstalled entry must never
   inherit a verification made against the entry it replaced. *)
let uninstall t ~event:name =
  let ev = event t name in
  Hashtbl.remove t.opt_entries ev.Event.id;
  t.batch_window <- None

let uninstall_all t =
  Hashtbl.reset t.opt_entries;
  t.batch_window <- None
let optimized_events t = Hashtbl.fold (fun id _ acc -> id :: acc) t.opt_entries []

let set_speculation t ~after ~expect =
  Hashtbl.replace t.spec_table (event t after).Event.id (event t expect)

let clear_speculation t = Hashtbl.reset t.spec_table

(* --- Measurements ----------------------------------------------------- *)

let event_processing_time t name =
  Option.value ~default:0 (Hashtbl.find_opt t.event_time (event t name).Event.id)

let event_dispatch_count t name =
  Option.value ~default:0 (Hashtbl.find_opt t.event_count (event t name).Event.id)

let total_handler_time t = t.handler_time

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "dispatches: %d optimized, %d batched, %d generic, %d fallbacks (+%d segment); \
     speculation %d/%d hit/miss; deferral %d pairs, %d flushes; %d bytes marshaled; \
     %d handler failures"
    s.optimized_dispatches s.batched_dispatches s.generic_dispatches s.fallbacks
    s.segment_fallbacks s.spec_hits s.spec_misses s.deferred_pairs
    s.deferred_flushes s.marshal_bytes s.handler_failures

let reset_measurements t =
  Hashtbl.reset t.event_time;
  Hashtbl.reset t.event_count;
  t.handler_time <- 0;
  t.stats.generic_dispatches <- 0;
  t.stats.optimized_dispatches <- 0;
  t.stats.batched_dispatches <- 0;
  t.stats.fallbacks <- 0;
  t.stats.segment_fallbacks <- 0;
  t.stats.spec_hits <- 0;
  t.stats.spec_misses <- 0;
  t.stats.marshal_bytes <- 0;
  t.stats.deferred_pairs <- 0;
  t.stats.deferred_flushes <- 0;
  t.stats.handler_failures <- 0
