(** Dominator analysis over event graphs (Sec. 5: detecting co-relations
    between events beyond trace adjacency).

    Event A dominates B (w.r.t. a root) when every path from the root to
    B passes through A — so B can only occur after A has, even when they
    are never adjacent in the trace. *)

type t

(** Nodes reachable from [root] (the analysis domain). *)
val reachable : Event_graph.t -> root:string -> Set.Make(String).t

(** Iterative data-flow dominator computation. *)
val compute : Event_graph.t -> root:string -> t

(** Dominators of a node, including itself; [[]] if unreachable. *)
val dominators : t -> string -> string list

val dominates : t -> dominator:string -> node:string -> bool

(** The unique closest strict dominator (None for the root and
    unreachable nodes). *)
val immediate_dominator : t -> string -> string option

(** (a, b) pairs where [a] strictly dominates [b], excluding the root;
    sorted. *)
val correlated_pairs : t -> (string * string) list
