(* Procedure inlining.

   Statement-level calls to small non-recursive user procedures are
   expanded in place (Sec. 3.2.2: replacing an indirect raise by a direct
   call "opens up the possibility of inlining the function call into the
   call site").  Only whole-statement calls are inlined:

     f(e1, .., en);            and      let x = f(e1, .., en);

   The callee must not end with returns in the middle of control flow —
   any returns are first removed with [Deret], which preserves handler
   semantics. *)

open Ast

let default_size_limit = 120

let is_recursive (prog : program) (p : proc) : bool =
  let rec calls_in_expr = function
    | Lit _ | Var _ | Global _ | Arg _ -> []
    | Binop (_, a, b) -> calls_in_expr a @ calls_in_expr b
    | Unop (_, a) -> calls_in_expr a
    | Call (f, args) -> f :: List.concat_map calls_in_expr args
  in
  let rec calls_in_block b = List.concat_map calls_in_stmt b
  and calls_in_stmt = function
    | Let (_, e) | Assign (_, e) | Set_global (_, e) | Expr e -> calls_in_expr e
    | If (c, t, e) -> calls_in_expr c @ calls_in_block t @ calls_in_block e
    | While (c, b) -> calls_in_expr c @ calls_in_block b
    | Raise { args; _ } | Emit (_, args) -> List.concat_map calls_in_expr args
    | Return (Some e) -> calls_in_expr e
    | Return None -> []
  in
  (* transitive reachability from p back to p *)
  let rec reachable seen name =
    if List.mem name seen then seen
    else
      match proc_by_name prog name with
      | None -> seen
      | Some q -> List.fold_left reachable (name :: seen) (calls_in_block q.body)
  in
  let direct = calls_in_block p.body in
  List.exists (fun f -> List.mem p.name (reachable [] f) || f = p.name) direct

(* Expand a call to [callee] with argument expressions [args]; the result
   binds arguments to fresh temporaries, then runs the freshened,
   return-free body.  [bind_result] receives the variable holding the
   result value (always Unit-valued if the body never returns a value). *)
let expand (callee : proc) (args : expr list) ~(bind_result : string option) : block =
  let arg_temps = List.map (fun _ -> Fresh.var "inl_arg") args in
  let bind_stmts = List.map2 (fun t a -> Let (t, a)) arg_temps args in
  (* Positional argument references inside the callee become the temps. *)
  let arg_exprs = Array.of_list (List.map (fun t -> Var t) arg_temps) in
  let result_var = Fresh.var "inl_res" in
  (* freshen first so the result variable introduced below is not renamed *)
  let locals = Subst.locals_of callee.params callee.body in
  let body, ren = Subst.freshen ~prefix:("inl_" ^ callee.name) locals callee.body in
  (* convert [return e] into assignments to result_var before removing
     returns, so the value is preserved *)
  let body =
    Rewrite.stmts
      (function
        | Return (Some e) -> [ Assign (result_var, e); Return None ]
        | s -> [ s ])
      body
  in
  let body = Subst.replace_args arg_exprs body in
  (* bind parameters to the temps (extra params default to Unit) *)
  let param_binds =
    List.mapi
      (fun i p ->
        let p' = match Hashtbl.find_opt ren p with Some q -> q | None -> p in
        if i < List.length arg_temps then Let (p', Var (List.nth arg_temps i))
        else Let (p', Lit Value.Unit))
      callee.params
  in
  let body = Deret.remove_returns body in
  let res =
    match bind_result with
    | None -> []
    | Some x -> [ Assign (x, Var result_var) ]
  in
  (Let (result_var, Lit Value.Unit) :: bind_stmts) @ param_binds @ body @ res

let pass ?(size_limit = default_size_limit) (prog : program) (b : block) : block =
  let inlinable f =
    match proc_by_name prog f with
    | Some p when Analysis.proc_size p <= size_limit && not (is_recursive prog p) ->
      Some p
    | Some _ | None -> None
  in
  Rewrite.stmts
    (function
      | Expr (Call (f, args)) as s ->
        (match inlinable f with
         | Some p -> expand p args ~bind_result:None
         | None -> [ s ])
      | Let (x, Call (f, args)) as s ->
        (match inlinable f with
         | Some p -> Let (x, Lit Value.Unit) :: expand p args ~bind_result:(Some x)
         | None -> [ s ])
      | Assign (x, Call (f, args)) as s ->
        (match inlinable f with
         | Some p -> expand p args ~bind_result:(Some x)
         | None -> [ s ])
      | s -> [ s ])
    b
