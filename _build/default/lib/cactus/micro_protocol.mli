(** A Cactus micro-protocol (Sec. 2.3): a named collection of event
    handlers, the HIR source defining them, and initial shared state.
    Composite protocols are assembled by choosing micro-protocols. *)

open Podopt_eventsys

type binding = {
  event : string;
  handler : string;   (** HIR procedure name *)
  order : int option; (** execution order within the event *)
}

type t = {
  name : string;
  source : string;
  bindings : binding list;
  globals : (string * Podopt_hir.Value.t) list;
}

val make :
  name:string -> source:string -> ?globals:(string * Podopt_hir.Value.t) list ->
  binding list -> t

(** Initialize globals and bind every handler. *)
val bind_all : Runtime.t -> t -> unit

val unbind_all : Runtime.t -> t -> unit
