lib/xwin/menu.mli: Client Widget
