(* Open-loop arrival schedules.  Everything here is a pure function of
   (spec, seed, start, interval, ops): the replayer re-derives a
   session's schedule from the recorded config instead of logging
   per-op timestamps, so the codec below is part of the replay-log
   vocabulary and must stay stable. *)

module Prng = Podopt_net.Prng

type spec =
  | Periodic
  | Uniform
  | Pareto of float
  | Flash of int * int

let to_string = function
  | Periodic -> "periodic"
  | Uniform -> "uniform"
  | Pareto a -> Printf.sprintf "pareto:%g" a
  | Flash (t, m) -> Printf.sprintf "flash:%d:%d" t m

let grammar = "periodic|uniform|pareto:ALPHA|flash:T:MULT"

let of_string str =
  match String.split_on_char ':' str with
  | [ "periodic" ] -> Ok Periodic
  | [ "uniform" ] -> Ok Uniform
  | [ "pareto"; a ] ->
    (match float_of_string_opt a with
     | Some alpha when alpha > 1.0 && Float.is_finite alpha -> Ok (Pareto alpha)
     | Some _ | None ->
       Error
         (Printf.sprintf "bad pareto shape %S (expected pareto:ALPHA, ALPHA > 1)"
            a))
  | [ "flash"; t; m ] ->
    (match (int_of_string_opt t, int_of_string_opt m) with
     | Some t, Some m when t > 0 && m > 1 -> Ok (Flash (t, m))
     | Some _, Some _ ->
       Error
         (Printf.sprintf
            "bad flash burst %S:%S (expected flash:T:MULT, T > 0, MULT > 1)" t m)
     | _ ->
       Error
         (Printf.sprintf
            "bad flash burst %S:%S (expected flash:T:MULT, T > 0, MULT > 1)" t m))
  | _ -> Error (Printf.sprintf "unknown arrivals %S (expected %s)" str grammar)

(* Salt the arrival stream away from the link stream: Loadgen seeds a
   session's link from (broker seed + index + 1) and hands the same
   value here, so without the salt every loss/jitter draw would be
   correlated with an arrival draw. *)
let salt = 0x9e3779b97f4a7c15L

let gap spec rng ~interval ~elapsed =
  match spec with
  | Periodic -> interval
  | Uniform ->
    (* uniform in [1, 2*interval - 1]: mean = interval, never 0 *)
    1 + Prng.int rng ((2 * interval) - 1)
  | Pareto alpha ->
    (* inverse-transform Pareto with scale xm chosen so the mean
       xm * alpha / (alpha - 1) equals [interval]; capped so one tail
       draw cannot push a session past any reasonable horizon *)
    let xm = float_of_int interval *. (alpha -. 1.0) /. alpha in
    let u =
      (* u in (0, 1]: the +1 keeps the draw off 0 where the inverse
         CDF diverges *)
      float_of_int (1 + Prng.int rng 1_000_000) /. 1_000_000.0
    in
    let g = xm /. Float.pow u (1.0 /. alpha) in
    let cap = 50 * interval in
    max 1 (min cap (int_of_float g))
  | Flash (t, m) ->
    (* the first quarter of every T-cycle is the crowd: MULT-times the
       base rate, deterministic so every session surges together *)
    if elapsed mod t < t / 4 then max 1 (interval / m) else interval

let schedule spec ~seed ~start ~interval ~ops =
  if ops < 0 then invalid_arg "Arrivals.schedule: ops < 0";
  if interval <= 0 then invalid_arg "Arrivals.schedule: interval <= 0";
  let rng = Prng.create ~seed:(Int64.logxor seed salt) in
  let due = Array.make (max ops 1) start in
  let t = ref start in
  for k = 0 to ops - 1 do
    due.(k) <- !t;
    t := !t + gap spec rng ~interval ~elapsed:(!t - start)
  done;
  if ops = 0 then [||] else Array.sub due 0 ops
