(** Early-return elimination.

    A handler's [return] terminates that handler only.  When several
    handler bodies are concatenated into one super-handler (Sec. 3.2.1),
    a return inside one segment must not skip the following segments, so
    each segment's returns are first converted to structured control flow
    guarded by a fresh per-segment flag. *)

(** [remove_returns b] is [b] itself when it contains no [Return];
    otherwise an equivalent block containing none.  The computation of a
    [return e] expression (which may have effects) is preserved; its
    value is discarded, matching how the event system ignores handler
    results. *)
val remove_returns : Ast.block -> Ast.block
