(* Subsumption-candidate detection (Sec. 3.2.1, Fig. 8).

   A nested synchronous raise — event B raised synchronously from within a
   handler of event A, every time A occurs — is a candidate for subsuming
   B's handlers into A's super-handler.  Detection uses the begin/end
   nesting of the handler-instrumented trace; the optimizer then verifies
   the raise site syntactically in the HIR body before transforming. *)

open Podopt_eventsys

type candidate = {
  parent_event : string;
  parent_handler : string;
  child_event : string;
  occurrences : int;      (* how many times the nested raise was seen *)
  parent_invocations : int;  (* how many times the parent handler ran *)
}

let always (c : candidate) = c.occurrences = c.parent_invocations

let find (trace : Trace.t) : candidate list =
  let nested : (string * string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let handler_runs : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  (* stack of currently executing handlers: (event, handler) *)
  let stack = ref [] in
  List.iter
    (fun entry ->
      match entry with
      | Trace.Handler_begin { event; handler; _ } ->
        bump handler_runs (event, handler);
        stack := (event, handler) :: !stack
      | Trace.Handler_end _ ->
        (match !stack with [] -> () | _ :: rest -> stack := rest)
      | Trace.Event_raised { event = child; mode = Podopt_hir.Ast.Sync; _ } ->
        (match !stack with
         | (pev, ph) :: _ -> bump nested (pev, ph, child)
         | [] -> ())
      | Trace.Event_raised _ | Trace.Dispatch_begin _ | Trace.Dispatch_end _ -> ())
    (Trace.entries trace);
  let cands =
    Hashtbl.fold
      (fun (pev, ph, child) count acc ->
        {
          parent_event = pev;
          parent_handler = ph;
          child_event = child;
          occurrences = count;
          parent_invocations =
            Option.value ~default:0 (Hashtbl.find_opt handler_runs (pev, ph));
        }
        :: acc)
      nested []
  in
  List.sort compare cands
