(* Dominator analysis over event graphs (Sec. 5: "heavier optimizations
   such as dominator / post-dominator analysis can be used to detect
   co-relations between events").

   Event A dominates event B (w.r.t. a root) when every path from the
   root to B passes through A: B can only ever be reached after A, a
   correlation that survives even when A and B are not adjacent in the
   trace.  Implemented with the standard iterative data-flow algorithm
   (sets; the graphs here are tiny). *)

module SS = Set.Make (String)

type t = {
  root : string;
  (* for each reachable node, the full set of its dominators (including
     itself) *)
  dom : (string, SS.t) Hashtbl.t;
}

let reachable (g : Event_graph.t) ~root : SS.t =
  let seen = ref SS.empty in
  let rec go n =
    if not (SS.mem n !seen) then begin
      seen := SS.add n !seen;
      List.iter (fun (e : Event_graph.edge) -> go e.Event_graph.dst)
        (Event_graph.successors g n)
    end
  in
  if Hashtbl.mem g.Event_graph.nodes root then go root;
  !seen

let compute (g : Event_graph.t) ~root : t =
  let nodes = reachable g ~root in
  let dom = Hashtbl.create 16 in
  let all = nodes in
  SS.iter
    (fun n ->
      Hashtbl.replace dom n (if n = root then SS.singleton root else all))
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    SS.iter
      (fun n ->
        if n <> root then begin
          let preds =
            List.filter
              (fun (e : Event_graph.edge) -> SS.mem e.Event_graph.src nodes)
              (Event_graph.predecessors g n)
          in
          let meet =
            List.fold_left
              (fun acc (e : Event_graph.edge) ->
                let d = Hashtbl.find dom e.Event_graph.src in
                match acc with None -> Some d | Some a -> Some (SS.inter a d))
              None preds
          in
          let next =
            match meet with
            | Some m -> SS.add n m
            | None -> SS.singleton n (* unreachable via preds: only itself *)
          in
          if not (SS.equal next (Hashtbl.find dom n)) then begin
            Hashtbl.replace dom n next;
            changed := true
          end
        end)
      nodes
  done;
  { root; dom }

let dominators (t : t) (node : string) : string list =
  match Hashtbl.find_opt t.dom node with
  | Some s -> SS.elements s
  | None -> []

let dominates (t : t) ~(dominator : string) ~(node : string) : bool =
  match Hashtbl.find_opt t.dom node with
  | Some s -> SS.mem dominator s
  | None -> false

(* The immediate dominator: the strict dominator dominated by every
   other strict dominator. *)
let immediate_dominator (t : t) (node : string) : string option =
  match Hashtbl.find_opt t.dom node with
  | None -> None
  | Some s ->
    let strict = SS.remove node s in
    SS.fold
      (fun cand acc ->
        let dominated_by_all_others =
          SS.for_all
            (fun other -> other = cand || dominates t ~dominator:other ~node:cand)
            strict
        in
        if dominated_by_all_others then Some cand else acc)
      strict None

(* Correlated pairs: (a, b) such that [a] strictly dominates [b] — "b
   can only occur after a", usable for speculative preparation even when
   the two are not trace-adjacent. *)
let correlated_pairs (t : t) : (string * string) list =
  Hashtbl.fold
    (fun node doms acc ->
      SS.fold
        (fun d acc -> if d <> node && d <> t.root then (d, node) :: acc else acc)
        doms acc)
    t.dom []
  |> List.sort compare
