(* Static checking of HIR programs.

   Handlers are registered dynamically, so a misspelled variable or a
   wrong-arity primitive call would otherwise only surface when the
   handler first runs — possibly deep into an experiment.  The checker
   runs at composite-assembly time and reports:

   - references to variables with no preceding definite assignment;
   - calls to unknown procedures/primitives, or with a wrong arity;
   - raise sites whose event name never appears in any binding list
     (advisory: raising an unbound event is legal but usually a typo);
   - statically unreachable statements (after a return). *)

open Ast

type issue =
  | Unbound_variable of { proc : string; var : string }
  | Unknown_callee of { proc : string; callee : string }
  | Arity_mismatch of { proc : string; callee : string; expected : int; got : int }
  | Unreachable_code of { proc : string }
  | Unknown_event of { proc : string; event : string }  (* advisory *)

let pp_issue ppf = function
  | Unbound_variable { proc; var } ->
    Fmt.pf ppf "%s: variable %s may be used before assignment" proc var
  | Unknown_callee { proc; callee } ->
    Fmt.pf ppf "%s: call to unknown procedure or primitive %s" proc callee
  | Arity_mismatch { proc; callee; expected; got } ->
    Fmt.pf ppf "%s: %s expects %d arguments, got %d" proc callee expected got
  | Unreachable_code { proc } -> Fmt.pf ppf "%s: unreachable code after return" proc
  | Unknown_event { proc; event } ->
    Fmt.pf ppf "%s: raises event %s which has no known binding (advisory)" proc event

let is_advisory = function
  | Unknown_event _ -> true
  | Unbound_variable _ | Unknown_callee _ | Arity_mismatch _ | Unreachable_code _ ->
    false

module SS = Set.Make (String)

(* Definite-assignment analysis: a variable is definitely assigned after
   a Let/Assign on every path.  Branches join with intersection; loop
   bodies may not execute, so their assignments don't survive the loop. *)
let check_proc ?(known_events = []) (prog : program) (p : proc) : issue list =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let known_events = SS.of_list known_events in
  let rec check_expr (defined : SS.t) (e : expr) : unit =
    match e with
    | Lit _ | Global _ | Arg _ -> ()
    | Var x ->
      if not (SS.mem x defined) then add (Unbound_variable { proc = p.name; var = x })
    | Binop (_, a, b) ->
      check_expr defined a;
      check_expr defined b
    | Unop (_, a) -> check_expr defined a
    | Call (f, args) ->
      List.iter (check_expr defined) args;
      (match proc_by_name prog f with
       | Some _ -> () (* user procedures accept any arity; missing = Unit *)
       | None ->
         (match Prim.find f with
          | prim ->
            (match prim.Prim.arity with
             | Some n when List.length args <> n ->
               add
                 (Arity_mismatch
                    { proc = p.name; callee = f; expected = n; got = List.length args })
             | Some _ | None -> ())
          | exception Prim.Unknown _ ->
            add (Unknown_callee { proc = p.name; callee = f })))
  in
  (* returns the set of definitely-assigned variables after the block,
     or None if the block always returns *)
  let rec check_block (defined : SS.t) (b : block) : SS.t option =
    match b with
    | [] -> Some defined
    | s :: rest ->
      (match check_stmt defined s with
       | Some defined' -> check_block defined' rest
       | None ->
         if rest <> [] then add (Unreachable_code { proc = p.name });
         None)
  and check_stmt (defined : SS.t) (s : stmt) : SS.t option =
    match s with
    | Let (x, e) | Assign (x, e) ->
      check_expr defined e;
      Some (SS.add x defined)
    | Set_global (_, e) ->
      check_expr defined e;
      Some defined
    | Expr e ->
      check_expr defined e;
      Some defined
    | If (c, t, f) ->
      check_expr defined c;
      let dt = check_block defined t in
      let df = check_block defined f in
      (match dt, df with
       | Some a, Some b -> Some (SS.inter a b)
       | Some a, None | None, Some a -> Some a
       | None, None -> None)
    | While (c, body) ->
      check_expr defined c;
      (* the body may run zero times: its assignments don't escape *)
      ignore (check_block defined body);
      Some defined
    | Raise { event; args; _ } ->
      List.iter (check_expr defined) args;
      if not (SS.is_empty known_events) && not (SS.mem event known_events) then
        add (Unknown_event { proc = p.name; event });
      Some defined
    | Emit (_, args) ->
      List.iter (check_expr defined) args;
      Some defined
    | Return e ->
      Option.iter (check_expr defined) e;
      None
  in
  ignore (check_block (SS.of_list p.params) p.body);
  List.rev !issues

let check_program ?known_events (prog : program) : issue list =
  List.concat_map (check_proc ?known_events prog) prog

let errors issues = List.filter (fun i -> not (is_advisory i)) issues
