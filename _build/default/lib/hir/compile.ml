(* Compilation of HIR to OCaml closures.

   This is the "code generation" half of the paper's pipeline: once the
   optimizer has produced a merged, specialized super-handler body, that
   body is compiled so that running it no longer pays interpretation
   overhead.  Variables are resolved to integer slots at compile time
   (name lookups disappear), control flow becomes direct OCaml control
   flow, and literals are preallocated.

   The generated closure still reports one [tick] per executed node so the
   deterministic cost model can price compiled execution differently from
   interpreted execution; the wall-clock speedup comes from the removed
   hashtable lookups, list traversals and match dispatch. *)

open Ast

type frame = {
  slots : Value.t array;
  args : Value.t array;
  host : Interp.host;
}

type compiled_proc = Interp.host -> Value.t list -> Value.t

(* Per-program compilation context: lazily compiled user procedures, so
   that user calls and recursion work. *)
type ctx = {
  prog : program;
  cache : (string, compiled_proc) Hashtbl.t;
}

let slot_map (p : proc) : (string, int) Hashtbl.t =
  let slots = Hashtbl.create 16 in
  let next = ref 0 in
  let add x =
    if not (Hashtbl.mem slots x) then begin
      Hashtbl.add slots x !next;
      incr next
    end
  in
  List.iter add p.params;
  let rec scan_block b = List.iter scan_stmt b
  and scan_stmt = function
    | Let (x, _) | Assign (x, _) -> add x
    | If (_, t, e) ->
      scan_block t;
      scan_block e
    | While (_, b) -> scan_block b
    | Set_global _ | Expr _ | Raise _ | Emit _ | Return _ -> ()
  in
  scan_block p.body;
  slots

let rec compile_expr (ctx : ctx) slots (e : expr) : frame -> Value.t =
  match e with
  | Lit v -> fun fr -> fr.host.tick 1; v
  | Var x ->
    (match Hashtbl.find_opt slots x with
     | Some i -> fun fr -> fr.host.tick 1; fr.slots.(i)
     | None -> fun _ -> raise (Interp.Unbound_variable x))
  | Global g -> fun fr -> fr.host.tick 1; fr.host.get_global g
  | Arg i ->
    fun fr ->
      fr.host.tick 1;
      if i < 0 || i >= Array.length fr.args then
        Value.type_error "arg %d out of range (%d args)" i (Array.length fr.args)
      else fr.args.(i)
  | Binop (And, a, b) ->
    let ca = compile_expr ctx slots a in
    let cb = compile_expr ctx slots b in
    fun fr ->
      fr.host.tick 1;
      if Value.as_bool (ca fr) then cb fr else Value.Bool false
  | Binop (Or, a, b) ->
    let ca = compile_expr ctx slots a in
    let cb = compile_expr ctx slots b in
    fun fr ->
      fr.host.tick 1;
      if Value.as_bool (ca fr) then Value.Bool true else cb fr
  | Binop (op, a, b) ->
    let ca = compile_expr ctx slots a in
    let cb = compile_expr ctx slots b in
    fun fr ->
      fr.host.tick 1;
      let va = ca fr in
      let vb = cb fr in
      Interp.eval_binop op va vb
  | Unop (op, a) ->
    let ca = compile_expr ctx slots a in
    fun fr ->
      fr.host.tick 1;
      Interp.eval_unop op (ca fr)
  | Call (f, args) ->
    let cargs = Array.of_list (List.map (compile_expr ctx slots) args) in
    (match proc_by_name ctx.prog f with
     | Some _ ->
       fun fr ->
         fr.host.tick 1;
         let vs = Array.to_list (Array.map (fun c -> c fr) cargs) in
         (compiled_proc ctx f) fr.host vs
     | None ->
       let prim = Prim.find f in
       fun fr ->
         fr.host.tick 1;
         let vs = Array.to_list (Array.map (fun c -> c fr) cargs) in
         let w = Prim.work_of prim vs in
         if w > 0 then fr.host.work w;
         prim.Prim.fn vs)

and compile_stmt ctx slots (s : stmt) : frame -> unit =
  match s with
  | Let (x, e) | Assign (x, e) ->
    let i = Hashtbl.find slots x in
    let ce = compile_expr ctx slots e in
    fun fr ->
      fr.host.tick 1;
      fr.slots.(i) <- ce fr
  | Set_global (g, e) ->
    let ce = compile_expr ctx slots e in
    fun fr ->
      fr.host.tick 1;
      fr.host.set_global g (ce fr)
  | If (c, t, e) ->
    let cc = compile_expr ctx slots c in
    let ct = compile_block ctx slots t in
    let ce = compile_block ctx slots e in
    fun fr ->
      fr.host.tick 1;
      if Value.truthy (cc fr) then ct fr else ce fr
  | While (c, b) ->
    let cc = compile_expr ctx slots c in
    let cb = compile_block ctx slots b in
    fun fr ->
      fr.host.tick 1;
      while Value.truthy (cc fr) do
        cb fr
      done
  | Expr e ->
    let ce = compile_expr ctx slots e in
    fun fr ->
      fr.host.tick 1;
      ignore (ce fr)
  | Raise { event; mode; args } ->
    let cargs = Array.of_list (List.map (compile_expr ctx slots) args) in
    fun fr ->
      fr.host.tick 1;
      let vs = Array.to_list (Array.map (fun c -> c fr) cargs) in
      fr.host.raise_event event mode vs
  | Emit (tag, args) ->
    let cargs = Array.of_list (List.map (compile_expr ctx slots) args) in
    fun fr ->
      fr.host.tick 1;
      let vs = Array.to_list (Array.map (fun c -> c fr) cargs) in
      fr.host.emit tag vs
  | Return None ->
    fun fr ->
      fr.host.tick 1;
      raise (Interp.Return_value Value.Unit)
  | Return (Some e) ->
    let ce = compile_expr ctx slots e in
    fun fr ->
      fr.host.tick 1;
      raise (Interp.Return_value (ce fr))

and compile_block ctx slots (b : block) : frame -> unit =
  let cs = Array.of_list (List.map (compile_stmt ctx slots) b) in
  fun fr -> Array.iter (fun c -> c fr) cs

and compiled_proc (ctx : ctx) (name : string) : compiled_proc =
  match Hashtbl.find_opt ctx.cache name with
  | Some c -> c
  | None ->
    (match proc_by_name ctx.prog name with
     | None -> Value.type_error "unknown procedure %s" name
     | Some p ->
       (* Insert a forward reference first so recursion terminates. *)
       let fwd = ref (fun _ _ -> assert false) in
       Hashtbl.add ctx.cache name (fun host args -> !fwd host args);
       let slots = slot_map p in
       let nslots = Hashtbl.length slots in
       let cbody = compile_block ctx slots p.body in
       let param_slots =
         List.map (fun x -> Hashtbl.find slots x) p.params
       in
       let run host args =
         Interp.with_call_depth @@ fun () ->
         let fr = { slots = Array.make (max nslots 1) Value.Unit; args = Array.of_list args; host } in
         let rec bind is vs =
           match is, vs with
           | [], _ -> ()
           | i :: is', v :: vs' ->
             fr.slots.(i) <- v;
             bind is' vs'
           | _ :: _, [] -> ()
         in
         bind param_slots args;
         try
           cbody fr;
           Value.Unit
         with Interp.Return_value v -> v
       in
       fwd := run;
       Hashtbl.replace ctx.cache name run;
       run)

let make_ctx (prog : program) : ctx = { prog; cache = Hashtbl.create 16 }

(* Compile one procedure of a program. *)
let proc (prog : program) (name : string) : compiled_proc =
  compiled_proc (make_ctx prog) name
