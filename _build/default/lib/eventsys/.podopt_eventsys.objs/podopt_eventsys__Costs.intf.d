lib/eventsys/costs.mli:
