(* X protocol events: the 33 core event kinds of Xlib (Sec. 2.3: "The
   Xlib framework specifies 33 basic events"), with the event-mask and
   modifier machinery clients use to select and match them. *)

type kind =
  | KeyPress | KeyRelease
  | ButtonPress | ButtonRelease
  | MotionNotify
  | EnterNotify | LeaveNotify
  | FocusIn | FocusOut
  | KeymapNotify
  | Expose | GraphicsExpose | NoExpose
  | VisibilityNotify
  | CreateNotify | DestroyNotify
  | UnmapNotify | MapNotify | MapRequest
  | ReparentNotify
  | ConfigureNotify | ConfigureRequest
  | GravityNotify
  | ResizeRequest
  | CirculateNotify | CirculateRequest
  | PropertyNotify
  | SelectionClear | SelectionRequest | SelectionNotify
  | ColormapNotify
  | ClientMessage
  | MappingNotify

let all_kinds =
  [
    KeyPress; KeyRelease; ButtonPress; ButtonRelease; MotionNotify; EnterNotify;
    LeaveNotify; FocusIn; FocusOut; KeymapNotify; Expose; GraphicsExpose; NoExpose;
    VisibilityNotify; CreateNotify; DestroyNotify; UnmapNotify; MapNotify; MapRequest;
    ReparentNotify; ConfigureNotify; ConfigureRequest; GravityNotify; ResizeRequest;
    CirculateNotify; CirculateRequest; PropertyNotify; SelectionClear;
    SelectionRequest; SelectionNotify; ColormapNotify; ClientMessage; MappingNotify;
  ]

let kind_to_string = function
  | KeyPress -> "KeyPress" | KeyRelease -> "KeyRelease"
  | ButtonPress -> "ButtonPress" | ButtonRelease -> "ButtonRelease"
  | MotionNotify -> "MotionNotify"
  | EnterNotify -> "EnterNotify" | LeaveNotify -> "LeaveNotify"
  | FocusIn -> "FocusIn" | FocusOut -> "FocusOut"
  | KeymapNotify -> "KeymapNotify"
  | Expose -> "Expose" | GraphicsExpose -> "GraphicsExpose" | NoExpose -> "NoExpose"
  | VisibilityNotify -> "VisibilityNotify"
  | CreateNotify -> "CreateNotify" | DestroyNotify -> "DestroyNotify"
  | UnmapNotify -> "UnmapNotify" | MapNotify -> "MapNotify" | MapRequest -> "MapRequest"
  | ReparentNotify -> "ReparentNotify"
  | ConfigureNotify -> "ConfigureNotify" | ConfigureRequest -> "ConfigureRequest"
  | GravityNotify -> "GravityNotify"
  | ResizeRequest -> "ResizeRequest"
  | CirculateNotify -> "CirculateNotify" | CirculateRequest -> "CirculateRequest"
  | PropertyNotify -> "PropertyNotify"
  | SelectionClear -> "SelectionClear" | SelectionRequest -> "SelectionRequest"
  | SelectionNotify -> "SelectionNotify"
  | ColormapNotify -> "ColormapNotify"
  | ClientMessage -> "ClientMessage"
  | MappingNotify -> "MappingNotify"

(* Event masks: which kinds a widget has asked to receive. *)
let mask_bit (k : kind) : int =
  let rec index i = function
    | [] -> assert false
    | k' :: rest -> if k' = k then i else index (i + 1) rest
  in
  1 lsl index 0 all_kinds

let mask_of_kinds kinds = List.fold_left (fun m k -> m lor mask_bit k) 0 kinds
let selects mask kind = mask land mask_bit kind <> 0

(* Modifier state carried by input events. *)
type modifiers = { ctrl : bool; shift : bool; alt : bool }

let no_mods = { ctrl = false; shift = false; alt = false }

(* A concrete X event as delivered to the client. *)
type t = {
  kind : kind;
  window : int;       (* target widget id; 0 = route by pointer position *)
  x : int;
  y : int;
  detail : int;       (* button number / keycode / misc *)
  mods : modifiers;
  time : int;
}

let make ?(window = 0) ?(x = 0) ?(y = 0) ?(detail = 0) ?(mods = no_mods) ?(time = 0)
    kind =
  { kind; window; x; y; detail; mods; time }
