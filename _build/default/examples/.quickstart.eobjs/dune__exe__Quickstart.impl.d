examples/quickstart.ml: Fmt Handler List Parse Podopt Runtime Value
