test/test_extensions.ml: Adaptive Alcotest Ast Defer Dominators Event_graph Handler Helpers List Parse Podopt Printf Runtime Value
