lib/hir/subst.mli: Ast Hashtbl
