lib/xwin/client.mli: Costs Hashtbl Podopt_eventsys Podopt_hir Queue Runtime Widget Xevent
