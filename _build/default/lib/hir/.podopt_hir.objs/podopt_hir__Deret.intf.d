lib/hir/deret.mli: Ast
