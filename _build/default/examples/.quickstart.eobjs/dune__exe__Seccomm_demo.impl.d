examples/seccomm_demo.ml: Ast Driver Fmt Handler Interp Link Packet Podopt Podopt_apps Podopt_net Podopt_seccomm Runtime Value
