test/test_stack.ml: Alcotest Bytes Char List Podopt Podopt_apps Podopt_net Printf Runtime Value
