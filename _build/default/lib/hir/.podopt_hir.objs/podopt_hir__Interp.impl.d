lib/hir/interp.ml: Array Ast Bytes Fun Hashtbl List Prim Value
