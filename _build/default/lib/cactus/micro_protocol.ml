(* A Cactus micro-protocol (Sec. 2.3): a named collection of event
   handlers plus the HIR source that defines them and an initializer for
   its shared state.

   A composite protocol is assembled by choosing micro-protocols; their
   handlers are bound to user-defined events at instantiation time, in the
   declared order. *)

open Podopt_eventsys

type binding = {
  event : string;
  handler : string;       (* HIR procedure name *)
  order : int option;
}

type t = {
  name : string;
  source : string;        (* HIR source text defining the handler procs *)
  bindings : binding list;
  globals : (string * Podopt_hir.Value.t) list;  (* initial shared state *)
}

let make ~name ~source ?(globals = []) bindings = { name; source; bindings; globals }

let bind_all (rt : Runtime.t) (mp : t) : unit =
  List.iter (fun (g, v) -> Runtime.set_global rt g v) mp.globals;
  List.iter
    (fun b -> Runtime.bind rt ~event:b.event ?order:b.order (Handler.hir' b.handler))
    mp.bindings

let unbind_all (rt : Runtime.t) (mp : t) : unit =
  List.iter (fun b -> ignore (Runtime.unbind rt ~event:b.event ~handler:b.handler)) mp.bindings
