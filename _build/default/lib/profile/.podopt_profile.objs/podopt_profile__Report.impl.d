lib/profile/report.ml: Chains Event_graph Fmt Handler_graph List Paths String Subsume
