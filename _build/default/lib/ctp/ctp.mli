(** CTP: the configurable transport protocol of the paper's video-player
    experiment (Sec. 4.2), assembled from Cactus micro-protocols.

    The sender-side handler sequences reproduce Fig. 8:

    {v
    SegFromUser: FEC-SFU1 (10), SeqSeg-SFU (20), TDriver-SFU (30), FEC-SFU2 (40)
    Seg2Net:     PAU-S2N (10),  WFC-S2N (20),    FEC-S2N (30),     TD-S2N (40)
    v}

    with TDriver-SFU synchronously raising Seg2Net from inside
    SegFromUser handling — the subsumption example of Fig. 9. *)

open Podopt_eventsys

val sender_composite : unit -> Podopt_cactus.Composite.t
val full_composite : unit -> Podopt_cactus.Composite.t

(** Without FEC, for configuration-comparison experiments. *)
val minimal_composite : unit -> Podopt_cactus.Composite.t

(** With AIMD congestion control added: SegmentAcked and SegmentTimeout
    become multi-handler events. *)
val extended_composite : unit -> Podopt_cactus.Composite.t

(** Create a runtime hosting a CTP instance (installs the crypto HIR
    primitives; [with_receiver] adds the receiving-side
    micro-protocols). *)
val create :
  ?costs:Costs.model -> ?with_receiver:bool -> ?minimal:bool -> ?extended:bool ->
  unit -> Runtime.t

(** Raise [Open] (announce + register system input). *)
val open_session : Runtime.t -> unit

(** Send a user message through [SendMsg] (priority > 0 routes through
    MsgFrmUserH, otherwise MsgFrmUserL). *)
val send : Runtime.t -> ?priority:int -> bytes -> unit

(** Schedule the first high- and low-priority controller clock ticks. *)
val start_clocks : Runtime.t -> period_h:int -> period_l:int -> unit

val rearm_clock_h : Runtime.t -> period:int -> int -> unit
val rearm_clock_l : Runtime.t -> period:int -> int -> unit

(** Raise the (asynchronous) statistics [Sample] event. *)
val sample : Runtime.t -> unit

(** Read an integer statistic from CTP shared state (0 if unset). *)
val stat : Runtime.t -> string -> int

val sent_count : Runtime.t -> int
val delivered : Runtime.t -> int
val acks : Runtime.t -> int
val retrans : Runtime.t -> int
val frag_size : Runtime.t -> int
