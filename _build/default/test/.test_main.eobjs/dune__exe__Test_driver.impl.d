test/test_driver.ml: Alcotest Driver Fmt Guard Handler Helpers List Parse Plan Podopt Printf Runtime Trace Value
