(* The CTP event vocabulary (Fig. 5 of the paper).  Keeping the names in
   one place lets the application, benches and tests agree with the
   figures. *)

let open_ = "Open"
let add_sys_input = "AddSysInput"
let send_msg = "SendMsg"
let msg_frm_user_h = "MsgFrmUserH"
let msg_frm_user_l = "MsgFrmUserL"
let seg_from_user = "SegFromUser"
let seg2net = "Seg2Net"
let segment_sent = "SegmentSent"
let segment_acked = "SegmentAcked"
let segment_timeout = "SegmentTimeout"
let controller_clk_h = "ControllerClkH"
let controller_clk_l = "ControllerClkL"
let controller_firing = "ControllerFiring"
let controller_fired = "ControllerFired"
let controller = "Controller"
let adapt = "Adapt"
let resize_fragment = "ResizeFragment"
let sample = "Sample"

(* receiver side *)
let rcv_packet = "RcvPacket"
let seg_from_net = "SegFromNet"
let seg_ordered = "SegOrdered"
let msg_to_user = "MsgToUser"

let all =
  [
    open_; add_sys_input; send_msg; msg_frm_user_h; msg_frm_user_l; seg_from_user;
    seg2net; segment_sent; segment_acked; segment_timeout; controller_clk_h;
    controller_clk_l; controller_firing; controller_fired; controller; adapt;
    resize_fragment; sample; rcv_packet; seg_from_net; seg_ordered; msg_to_user;
  ]
