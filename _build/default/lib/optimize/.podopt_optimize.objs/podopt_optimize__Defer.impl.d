lib/optimize/defer.ml: Ast Chain_merge Compile Format List Pipeline Podopt_eventsys Podopt_hir Podopt_profile Printf Rewrite Runtime Superhandler
