(* Events: interned name/id pairs.

   The set of events is dynamic (Cactus-style user-defined events); the
   runtime interns names so the hot dispatch path works on integer ids. *)

type t = { id : int; name : string }

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id
let pp ppf e = Fmt.string ppf e.name

(* Interning table; one per runtime. *)
type table = {
  mutable next : int;
  by_name : (string, t) Hashtbl.t;
  by_id : (int, t) Hashtbl.t;
}

let create_table () = { next = 0; by_name = Hashtbl.create 32; by_id = Hashtbl.create 32 }

let intern tbl name =
  match Hashtbl.find_opt tbl.by_name name with
  | Some e -> e
  | None ->
    let e = { id = tbl.next; name } in
    tbl.next <- tbl.next + 1;
    Hashtbl.add tbl.by_name name e;
    Hashtbl.add tbl.by_id e.id e;
    e

let find_opt tbl name = Hashtbl.find_opt tbl.by_name name
let of_id tbl id = Hashtbl.find_opt tbl.by_id id
let all tbl = Hashtbl.fold (fun _ e acc -> e :: acc) tbl.by_name []
