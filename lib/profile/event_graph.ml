(* The event graph and the GraphBuilder algorithm (Fig. 4).

   There is an edge from event [a] to event [b] iff [b] ever immediately
   follows [a] in the trace; the edge weight counts how often.  Each edge
   also records the activation modes with which [b] was raised when it
   followed [a]: only an edge all of whose traversals were synchronous
   indicates guaranteed causality (Sec. 3.1) and may participate in an
   event chain. *)

open Podopt_hir

type edge = {
  src : string;
  dst : string;
  mutable weight : int;
  mutable sync : int;
  mutable async : int;
  mutable timed : int;
}

type node = {
  name : string;
  mutable occurrences : int;
  mutable raised_sync : int;
  mutable raised_async : int;
  mutable raised_timed : int;
}

type t = {
  edges : (string * string, edge) Hashtbl.t;
  nodes : (string, node) Hashtbl.t;
}

let create () = { edges = Hashtbl.create 64; nodes = Hashtbl.create 32 }

let node t name =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None ->
    let n = { name; occurrences = 0; raised_sync = 0; raised_async = 0; raised_timed = 0 } in
    Hashtbl.add t.nodes name n;
    n

let record_occurrence t name (mode : Ast.mode) =
  let n = node t name in
  n.occurrences <- n.occurrences + 1;
  match mode with
  | Ast.Sync -> n.raised_sync <- n.raised_sync + 1
  | Ast.Async -> n.raised_async <- n.raised_async + 1
  | Ast.Timed _ -> n.raised_timed <- n.raised_timed + 1

(* [causal] is false when the destination raise came from outside any
   handler (raise depth 0): such an occurrence cannot have been caused by
   the preceding event, so it must not contribute to the edge's
   synchronous (causality-implying) count even if the raise itself was
   synchronous. *)
let add_edge ?(causal = true) t ~src ~dst (mode : Ast.mode) =
  let e =
    match Hashtbl.find_opt t.edges (src, dst) with
    | Some e -> e
    | None ->
      let e = { src; dst; weight = 0; sync = 0; async = 0; timed = 0 } in
      Hashtbl.add t.edges (src, dst) e;
      ignore (node t src);
      ignore (node t dst);
      e
  in
  e.weight <- e.weight + 1;
  match mode with
  | Ast.Sync when causal -> e.sync <- e.sync + 1
  | Ast.Sync -> e.async <- e.async + 1
  | Ast.Async -> e.async <- e.async + 1
  | Ast.Timed _ -> e.timed <- e.timed + 1

(* GraphBuilder (Fig. 4): fold the event sequence, adding or bumping the
   (prev, current) edge. *)
let build_seq (sequence : (string * Ast.mode * int) list) : t =
  let t = create () in
  (match sequence with
   | [] -> ()
   | (first, first_mode, _) :: rest ->
     record_occurrence t first first_mode;
     let _ =
       List.fold_left
         (fun prev (ev, mode, depth) ->
           record_occurrence t ev mode;
           add_edge ~causal:(depth > 0) t ~src:prev ~dst:ev mode;
           ev)
         first rest
     in
     ());
  t

let build (sequence : (string * Ast.mode) list) : t =
  build_seq (List.map (fun (e, m) -> (e, m, 1)) sequence)

let of_trace (trace : Podopt_eventsys.Trace.t) : t =
  build_seq (Podopt_eventsys.Trace.event_sequence_with_depth trace)

(* Accumulate [src] into [into]: node occurrence counters and edge
   traversal counters add up.  Merging is associative and commutative in
   the resulting counters, which is what makes cross-run profile stores
   order-independent. *)
let merge_into ~into (src : t) =
  Hashtbl.iter
    (fun _ (n : node) ->
      let m = node into n.name in
      m.occurrences <- m.occurrences + n.occurrences;
      m.raised_sync <- m.raised_sync + n.raised_sync;
      m.raised_async <- m.raised_async + n.raised_async;
      m.raised_timed <- m.raised_timed + n.raised_timed)
    src.nodes;
  Hashtbl.iter
    (fun key (e : edge) ->
      let m =
        match Hashtbl.find_opt into.edges key with
        | Some m -> m
        | None ->
          let m = { src = e.src; dst = e.dst; weight = 0; sync = 0; async = 0; timed = 0 } in
          Hashtbl.add into.edges key m;
          ignore (node into e.src);
          ignore (node into e.dst);
          m
      in
      m.weight <- m.weight + e.weight;
      m.sync <- m.sync + e.sync;
      m.async <- m.async + e.async;
      m.timed <- m.timed + e.timed)
    src.edges

let merge_all graphs =
  let t = create () in
  List.iter (fun g -> merge_into ~into:t g) graphs;
  t

let edges t = Hashtbl.fold (fun _ e acc -> e :: acc) t.edges []
let nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
let find_edge t ~src ~dst = Hashtbl.find_opt t.edges (src, dst)
let edge_count t = Hashtbl.length t.edges
let node_count t = Hashtbl.length t.nodes

let total_weight t = Hashtbl.fold (fun _ e acc -> acc + e.weight) t.edges 0

let successors t name =
  Hashtbl.fold (fun (s, _) e acc -> if s = name then e :: acc else acc) t.edges []

let predecessors t name =
  Hashtbl.fold (fun (_, d) e acc -> if d = name then e :: acc else acc) t.edges []

let out_degree t name = List.length (successors t name)
let in_degree t name = List.length (predecessors t name)

(* An edge is "purely synchronous" when every traversal raised the target
   synchronously; only such edges support merging (Sec. 3.2.1). *)
let edge_is_sync (e : edge) = e.sync = e.weight && e.weight > 0

(* Deterministic ordering for printing and tests. *)
let sorted_edges t =
  List.sort
    (fun a b ->
      match compare b.weight a.weight with
      | 0 -> compare (a.src, a.dst) (b.src, b.dst)
      | c -> c)
    (edges t)

let pp ppf t =
  List.iter
    (fun e ->
      Fmt.pf ppf "%s -> %s [%d sync=%d async=%d timed=%d]@." e.src e.dst e.weight
        e.sync e.async e.timed)
    (sorted_edges t)
