(* MD5 message digest (RFC 1321), from scratch.

   Used by SecComm's KeyedMD5Integrity micro-protocol.  Like DES, this is
   a reproduction artifact: MD5 is cryptographically broken and is used
   here only because it is what the paper's system used in 2002. *)

let s_table = [|
  7;12;17;22; 7;12;17;22; 7;12;17;22; 7;12;17;22;
  5;9;14;20; 5;9;14;20; 5;9;14;20; 5;9;14;20;
  4;11;16;23; 4;11;16;23; 4;11;16;23; 4;11;16;23;
  6;10;15;21; 6;10;15;21; 6;10;15;21; 6;10;15;21;
|]

(* K[i] = floor(2^32 * abs(sin(i+1))) *)
let k_table = [|
  0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee;
  0xf57c0faf; 0x4787c62a; 0xa8304613; 0xfd469501;
  0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
  0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821;
  0xf61e2562; 0xc040b340; 0x265e5a51; 0xe9b6c7aa;
  0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
  0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed;
  0xa9e3e905; 0xfcefa3f8; 0x676f02d9; 0x8d2a4c8a;
  0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
  0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70;
  0x289b7ec6; 0xeaa127fa; 0xd4ef3085; 0x04881d05;
  0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
  0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039;
  0x655b59c3; 0x8f0ccc92; 0xffeff47d; 0x85845dd1;
  0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
  0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391;
|]

let mask32 = 0xFFFFFFFF
let ( +% ) a b = (a + b) land mask32
let rotl32 x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let digest_bytes (msg : bytes) : bytes =
  let msg_len = Bytes.length msg in
  (* padding: 0x80, zeros, 64-bit little-endian bit length *)
  let total =
    let base = msg_len + 9 in
    ((base + 63) / 64) * 64
  in
  let buf = Bytes.make total '\000' in
  Bytes.blit msg 0 buf 0 msg_len;
  Bytes.set buf msg_len '\x80';
  let bitlen = Int64.of_int (msg_len * 8) in
  for i = 0 to 7 do
    Bytes.set buf (total - 8 + i)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xFFL)))
  done;
  let a0 = ref 0x67452301
  and b0 = ref 0xefcdab89
  and c0 = ref 0x98badcfe
  and d0 = ref 0x10325476 in
  let word block j =
    let off = (block * 64) + (j * 4) in
    Char.code (Bytes.get buf off)
    lor (Char.code (Bytes.get buf (off + 1)) lsl 8)
    lor (Char.code (Bytes.get buf (off + 2)) lsl 16)
    lor (Char.code (Bytes.get buf (off + 3)) lsl 24)
  in
  for block = 0 to (total / 64) - 1 do
    let a = ref !a0 and b = ref !b0 and c = ref !c0 and d = ref !d0 in
    for i = 0 to 63 do
      let f, g =
        if i < 16 then ((!b land !c) lor (lnot !b land !d) land mask32, i)
        else if i < 32 then ((!d land !b) lor (lnot !d land !c) land mask32, ((5 * i) + 1) mod 16)
        else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) mod 16)
        else (!c lxor (!b lor (lnot !d land mask32)) land mask32, (7 * i) mod 16)
      in
      let f = f land mask32 in
      let tmp = !d in
      d := !c;
      c := !b;
      b := !b +% rotl32 (!a +% f +% k_table.(i) +% word block g) s_table.(i);
      a := tmp
    done;
    a0 := !a0 +% !a;
    b0 := !b0 +% !b;
    c0 := !c0 +% !c;
    d0 := !d0 +% !d
  done;
  let out = Bytes.create 16 in
  List.iteri
    (fun i v ->
      for j = 0 to 3 do
        Bytes.set out ((i * 4) + j) (Char.chr ((v lsr (8 * j)) land 0xFF))
      done)
    [ !a0; !b0; !c0; !d0 ];
  out

let digest_string (s : string) : bytes = digest_bytes (Bytes.of_string s)

let to_hex (d : bytes) : string =
  let buf = Buffer.create 32 in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf

let hex_of_string (s : string) : string = to_hex (digest_string s)
