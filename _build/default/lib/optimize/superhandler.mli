(** Handler merging (Sec. 3.2.1, Fig. 7): collapse all handlers bound to
    an event into one super-handler procedure.

    Each handler body is alpha-renamed apart, early returns become
    segment-local structured control flow, and positional parameters are
    rebound to the merged procedure's argument vector; segments are
    concatenated in binding order. *)

open Podopt_hir
open Podopt_eventsys

exception Not_mergeable of string

(** Name of the generated super-handler procedure for an event. *)
val super_name : string -> string

(** Prepare one handler body as a merge segment (freshened, return-free,
    parameters bound from the event's argument vector). *)
val segment_of_proc : Ast.proc -> Ast.block

(** The HIR procedures of the handlers currently bound to the event, in
    execution order.  Raises {!Not_mergeable} for events with no
    handlers, native handlers, or dangling procedure references. *)
val handler_procs : Runtime.t -> Ast.program -> event:string -> Ast.proc list

(** Merge the given procedures; returns the super-handler and its arity
    (the argument-vector width the compiled code expects). *)
val merge_procs : event:string -> Ast.proc list -> Ast.proc * int

(** [merge rt prog ~event] = [merge_procs] over [handler_procs]. *)
val merge : Runtime.t -> Ast.program -> event:string -> Ast.proc * int
