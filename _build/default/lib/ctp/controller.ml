(* Controller micro-protocol: the time-driven adaptation engine of CTP.

   High- and low-priority controller clocks (timed events) trigger a
   synchronous ControllerFiring -> Controller chain; the controller
   estimates throughput and raises Adapt; ControllerFired is announced
   asynchronously afterwards — reproducing the clock cluster of Fig. 5. *)

open Podopt_cactus

let source =
  {|
handler ctl_clk_h(tick) {
  global clk_h_ticks = global clk_h_ticks + 1;
  raise sync ControllerFiring(1);
}

handler ctl_clk_l(tick) {
  global clk_l_ticks = global clk_l_ticks + 1;
  raise sync ControllerFiring(0);
}

handler ctl_firing(pri) {
  global firings = global firings + 1;
  raise sync Controller(pri);
  raise async ControllerFired(pri);
}

handler ctl_controller(pri) {
  let sent = global sent_count;
  let delta = sent - global last_sent_count;
  global last_sent_count = sent;
  raise sync Adapt(delta, pri);
}

handler ctl_fired(pri) {
  global fired_seen = global fired_seen + 1;
}

// Occasional statistics sample (driven by the application).
handler ctl_sample(tick) {
  emit("sample", global sent_count, global inflight, global window);
}
|}

let mp : Micro_protocol.t =
  Micro_protocol.make ~name:"Controller" ~source
    ~globals:
      (let open Podopt_hir.Value in
       [
         ("clk_h_ticks", Int 0);
         ("clk_l_ticks", Int 0);
         ("firings", Int 0);
         ("last_sent_count", Int 0);
         ("fired_seen", Int 0);
       ])
    [
      { Micro_protocol.event = Events.controller_clk_h; handler = "ctl_clk_h"; order = Some 10 };
      { event = Events.controller_clk_l; handler = "ctl_clk_l"; order = Some 10 };
      { event = Events.controller_firing; handler = "ctl_firing"; order = Some 10 };
      { event = Events.controller; handler = "ctl_controller"; order = Some 10 };
      { event = Events.controller_fired; handler = "ctl_fired"; order = Some 10 };
      { event = Events.sample; handler = "ctl_sample"; order = Some 10 };
    ]
