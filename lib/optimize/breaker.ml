(* Sliding-window circuit breaker.  The window is a ring of per-batch
   (events, faults) samples; the trip test runs over the ring's sums so
   one noisy batch cannot trip a breaker that a healthy neighborhood
   would keep closed, and min_events keeps tiny windows (startup, idle
   shards) from tripping on 1-of-2 faults. *)

type policy = {
  window : int;
  trip_permille : int;
  min_events : int;
  cooldown : int;
}

let default_policy =
  { window = 8; trip_permille = 150; min_events = 16; cooldown = 16 }

type state = Closed | Open of int (* remaining cool-down batches *)

type t = {
  policy : policy;
  ring : (int * int) array; (* (events, faults) per batch *)
  mutable filled : int;     (* samples currently valid, <= window *)
  mutable next : int;       (* ring write cursor *)
  mutable state : state;
  mutable trips : int;
}

let create ?(policy = default_policy) () =
  if policy.window <= 0 then invalid_arg "Breaker.create: window <= 0";
  if policy.trip_permille < 0 || policy.trip_permille > 1000 then
    invalid_arg "Breaker.create: trip_permille out of 0..1000";
  if policy.min_events < 0 then invalid_arg "Breaker.create: min_events < 0";
  if policy.cooldown < 1 then invalid_arg "Breaker.create: cooldown < 1";
  {
    policy;
    ring = Array.make policy.window (0, 0);
    filled = 0;
    next = 0;
    state = Closed;
    trips = 0;
  }

let policy t = t.policy

type outcome = Ok | Tripped | Cooling | Recovered

let clear_window t =
  Array.fill t.ring 0 (Array.length t.ring) (0, 0);
  t.filled <- 0;
  t.next <- 0

let sums t =
  let events = ref 0 and faults = ref 0 in
  for i = 0 to t.filled - 1 do
    let e, f = t.ring.(i) in
    events := !events + e;
    faults := !faults + f
  done;
  (!events, !faults)

let observe t ~events ~faults =
  match t.state with
  | Open n ->
    if n <= 1 then begin
      (* the window restarts empty: faults from the pre-trip regime must
         not count against the freshly re-optimized path *)
      t.state <- Closed;
      clear_window t;
      Recovered
    end
    else begin
      t.state <- Open (n - 1);
      Cooling
    end
  | Closed ->
    t.ring.(t.next) <- (events, faults);
    t.next <- (t.next + 1) mod t.policy.window;
    if t.filled < t.policy.window then t.filled <- t.filled + 1;
    let ev, fa = sums t in
    if ev >= t.policy.min_events && fa * 1000 >= t.policy.trip_permille * ev
    then begin
      t.state <- Open t.policy.cooldown;
      t.trips <- t.trips + 1;
      clear_window t;
      Tripped
    end
    else Ok

let is_open t = match t.state with Open _ -> true | Closed -> false
let cooling t = match t.state with Open n -> n | Closed -> 0

let trips t = t.trips

let reset_measurements t =
  t.trips <- 0;
  clear_window t
