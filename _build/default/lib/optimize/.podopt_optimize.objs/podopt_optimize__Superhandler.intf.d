lib/optimize/superhandler.mli: Ast Podopt_eventsys Podopt_hir Runtime
