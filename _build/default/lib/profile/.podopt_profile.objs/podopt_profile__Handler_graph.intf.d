lib/profile/handler_graph.mli: Event_graph Podopt_eventsys Trace
